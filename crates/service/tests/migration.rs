//! Live-migration integration: checkpoint/restore/migrate/evacuate against
//! a twin tenant that never moves, asserting bit-for-bit equivalence,
//! request-id conservation, fault-record consistency and billing.

use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::{FabricParams, LogicNetlist};
use mcfpga_service::{
    MigrateError, Placement, ServiceError, ShardedService, TenantCheckpoint, TenantId,
};

fn service(shards: usize) -> ShardedService {
    ShardedService::new(shards, FabricParams::default(), TechParams::default()).unwrap()
}

/// `y = x XOR reg:acc`, `reg:acc = y` — a one-bit stream accumulator:
/// pass `n` answers `y_n = x_n ⊕ y_{n-1}` (lane-aligned state).
fn accumulator() -> LogicNetlist {
    let mut nl = LogicNetlist::new();
    let x = nl.add_input("x");
    let acc = nl.add_input("reg:acc");
    let xor = nl.add_lut("t", &[x, acc], 0b0110).unwrap();
    nl.add_output("y", xor).unwrap();
    nl.add_output("reg:acc", xor).unwrap();
    nl
}

fn parity_inputs(v: u32) -> Vec<(String, bool)> {
    (0..3)
        .map(|i| (format!("x{i}"), (v >> i) & 1 == 1))
        .collect()
}

fn submit3(svc: &mut ShardedService, t: TenantId, v: u32) {
    let owned = parity_inputs(v);
    let refs: Vec<(&str, bool)> = owned.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    svc.submit(t, &refs).unwrap();
}

/// A migrated tenant's pending requests keep their ids and produce
/// exactly the responses a never-migrated twin produces.
#[test]
fn migration_preserves_request_ids_and_outputs() {
    let mut svc = service(3);
    let parity = generators::parity_tree(3).unwrap();
    let mover = svc.admit("mover", &parity).unwrap(); // shard 0
    let twin = svc.admit("twin", &parity).unwrap(); // shard 1

    let vectors = [0b101u32, 0b010, 0b111, 0b001];
    for &v in &vectors {
        submit3(&mut svc, mover, v);
        submit3(&mut svc, twin, v);
    }
    let before = svc.pending_requests();
    let dst = svc.migrate_tenant(mover, 2).unwrap();
    assert_eq!(dst.shard, 2);
    assert_eq!(
        svc.pending_requests(),
        before,
        "migration drops or invents no requests"
    );
    assert_eq!(svc.registry().tenant(mover).unwrap().placement, dst);
    assert_eq!(svc.registry().occupant(0, 0), None, "source slot freed");

    let mut responses = svc.drain().unwrap();
    responses.sort_by_key(|r| r.request);
    assert_eq!(responses.len(), 2 * vectors.len());
    // interleaved submission: even ids are the mover's, odd the twin's
    for pair in responses.chunks(2) {
        assert_eq!(pair[0].tenant, mover);
        assert_eq!(pair[1].tenant, twin);
        assert_eq!(
            pair[0].outputs, pair[1].outputs,
            "migrated tenant must answer bit-for-bit like its twin"
        );
    }
    assert!(svc.take_faults().is_empty());

    // overhead was billed
    let usage = svc.usage(mover).unwrap();
    assert_eq!(usage.migrations, 1);
    assert!(usage.migration_bytes > 0);
    assert_eq!(usage.migration_downtime_cycles, 1 + vectors.len());
    assert_eq!(svc.usage(twin).unwrap().migrations, 0);
    let report = svc.billing_report();
    assert!(report.contains("migr"));
}

/// Stream-register state survives migration: an accumulator continues its
/// stream at the destination exactly where the source left off.
#[test]
fn register_state_travels_with_the_tenant() {
    let mut svc = service(2);
    let acc = accumulator();
    let mover = svc.admit("mover", &acc).unwrap(); // shard 0
    let twin = svc.admit("twin", &acc).unwrap(); // shard 1

    let stream = [true, true, false, true, false, false, true];
    let mut expected = Vec::new();
    let mut state = false;
    for &x in &stream {
        state ^= x;
        expected.push(state);
    }
    // half the stream, then migrate mid-stream, then the rest
    let mut got_mover = Vec::new();
    let mut got_twin = Vec::new();
    for (i, &x) in stream.iter().enumerate() {
        if i == 3 {
            assert_eq!(svc.register_file(mover).unwrap().len(), 1, "state exists");
            svc.migrate_tenant(mover, 1).unwrap();
        }
        svc.submit(mover, &[("x", x)]).unwrap();
        svc.submit(twin, &[("x", x)]).unwrap();
        for r in svc.drain().unwrap() {
            let y = r
                .outputs
                .iter()
                .find(|(n, _)| &**n == "y")
                .expect("reg outputs are state, not answers")
                .1;
            assert!(
                !r.outputs.iter().any(|(n, _)| n.starts_with("reg:")),
                "register values must not leak into responses"
            );
            if r.tenant == mover {
                got_mover.push(y);
            } else {
                got_twin.push(y);
            }
        }
    }
    assert_eq!(got_mover, expected, "stream unbroken across migration");
    assert_eq!(got_twin, expected);
}

/// Satellite regression: a tenant checkpointed mid-fault must not
/// resurrect already-discarded requests — a restore issues fresh ids and
/// never replays retired ones.
#[test]
fn stale_checkpoint_cannot_resurrect_discarded_requests() {
    let mut svc = service(2);
    let parity = generators::parity_tree(3).unwrap();
    let t = svc.admit("t", &parity).unwrap();

    svc.inject_plane_fault(t).unwrap();
    submit3(&mut svc, t, 0b011);
    submit3(&mut svc, t, 0b110);
    assert!(
        svc.drain().unwrap().is_empty(),
        "faulted pass answers nothing"
    );
    let faults = svc.take_faults();
    assert_eq!(faults.len(), 1);

    // checkpoint taken mid-fault: it snapshots the two pending requests
    let ckpt = svc.checkpoint_tenant(t).unwrap();
    assert_eq!(ckpt.pending.lanes, 2);
    let retired: Vec<u64> = ckpt.pending.requests.clone();

    // ... which are then discarded at the source
    assert_eq!(svc.discard_pending(t).unwrap(), 2);
    svc.repair_plane(t).unwrap();

    // restoring the stale checkpoint re-queues the *payloads* under fresh
    // ids; the discarded ids stay dead
    let (clone, fresh) = svc.restore_tenant(&ckpt, 1).unwrap();
    assert_eq!(fresh.len(), 2);
    for id in &fresh {
        assert!(
            !retired.contains(&id.value()),
            "restore reissued a retired request id"
        );
    }
    let responses = svc.drain().unwrap();
    // the restored clone's plane is the cached *healthy* plane (the digest
    // names the true configuration, not the injected corruption)
    let clone_responses: Vec<_> = responses.iter().filter(|r| r.tenant == clone).collect();
    assert_eq!(clone_responses.len(), 2);
    for r in &responses {
        assert!(
            !retired.contains(&r.request.value()),
            "a discarded request was answered"
        );
    }
}

/// Migrating a tenant whose plane is currently faulted moves the fault,
/// not heals it: recorded faults re-point at the new slot, the poisoned
/// plane travels, and repair-by-digest still restores service there.
#[test]
fn migration_preserves_fault_state_and_repair_path() {
    let mut svc = service(2);
    let parity = generators::parity_tree(3).unwrap();
    let t = svc.admit("t", &parity).unwrap();

    svc.inject_plane_fault(t).unwrap();
    submit3(&mut svc, t, 0b101);
    assert!(svc.drain().unwrap().is_empty());
    // fault recorded at (0, 0); do NOT take it yet — migrate first
    let dst = svc.migrate_tenant(t, 1).unwrap();

    let faults = svc.take_faults();
    assert_eq!(faults.len(), 1);
    assert_eq!(
        (faults[0].shard, faults[0].ctx),
        (dst.shard, dst.ctx),
        "fault records follow the migrated slot"
    );

    // the poisoned plane travelled: the next pass still faults, at dst
    assert!(svc.drain().unwrap().is_empty());
    let faults = svc.take_faults();
    assert_eq!((faults[0].shard, faults[0].ctx), (dst.shard, dst.ctx));

    // repair resolves through the digest cache (the tenant is no longer
    // fabric-resident, so this is the only path) and the request completes
    svc.repair_plane(t).unwrap();
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].outputs[0].1, false ^ true ^ false ^ true);
    assert_eq!(svc.pending_requests(), 0);
}

/// Evacuation clears the shard, keeps every pending request answerable,
/// and refuses (atomically) when the pool cannot absorb the tenants.
#[test]
fn evacuation_moves_every_tenant_or_nothing() {
    let mut svc = service(3);
    let parity = generators::parity_tree(3).unwrap();
    let wire = generators::wire_lanes(1).unwrap();
    // round-robin: shard 0 gets t0 and t3
    let t0 = svc.admit("t0", &parity).unwrap();
    let _t1 = svc.admit("t1", &wire).unwrap();
    let _t2 = svc.admit("t2", &parity).unwrap();
    let t3 = svc.admit("t3", &wire).unwrap();
    submit3(&mut svc, t0, 0b110);
    svc.submit(t3, &[("in0", true)]).unwrap();

    svc.inject_plane_fault(t0).unwrap();
    let moved = svc.evacuate_shard(0).unwrap();
    assert_eq!(moved.len(), 2);
    assert!(moved.iter().all(|(_, p)| p.shard != 0));
    assert!(svc.registry().occupied_contexts(0).is_empty());

    // faulted tenant still faulted (evacuation is not a repair) …
    assert_eq!(svc.drain().unwrap().len(), 1, "t3 served from its new slot");
    assert_eq!(svc.take_faults().len(), 1);
    // … until repaired, wherever it now lives
    svc.repair_plane(t0).unwrap();
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].tenant, t0);
    assert!(!responses[0].outputs[0].1, "parity(0,1,1) is even");

    // a 1-shard service can never evacuate: nothing moves, typed error
    let mut small = service(1);
    let a = small.admit("a", &parity).unwrap();
    submit3(&mut small, a, 0b001);
    let err = small.evacuate_shard(0).unwrap_err();
    assert_eq!(
        err,
        ServiceError::Migrate(MigrateError::EvacuationBlocked {
            tenants: 1,
            free_elsewhere: 0,
        })
    );
    assert_eq!(small.registry().tenant(a).unwrap().placement.shard, 0);
    assert_eq!(small.pending_requests(), 1, "nothing was disturbed");
}

/// Cross-service restore: a checkpoint serialized on one service resumes
/// on another that has the plane cached, and refuses one that does not.
#[test]
fn serialized_checkpoint_restores_across_services() {
    let parity = generators::parity_tree(3).unwrap();
    let mut src = service(1);
    let t = src.admit("roamer", &parity).unwrap();
    submit3(&mut src, t, 0b111);
    let wire = src.checkpoint_tenant(t).unwrap().to_bytes();

    let ckpt = TenantCheckpoint::from_bytes(&wire).unwrap();

    // a destination that has seen the same netlist holds the plane
    let mut dst = service(2);
    dst.admit("seeder", &parity).unwrap();
    let (restored, fresh) = dst.restore_tenant(&ckpt, 1).unwrap();
    assert_eq!(fresh.len(), 1);
    let responses = dst.drain().unwrap();
    let ours: Vec<_> = responses.iter().filter(|r| r.tenant == restored).collect();
    assert_eq!(ours.len(), 1);
    assert!(ours[0].outputs[0].1, "parity(1,1,1)");
    assert_eq!(dst.usage(restored).unwrap().requests, ckpt.usage.requests);

    // a cold destination cannot materialize the plane from a digest
    let mut cold = service(1);
    assert!(matches!(
        cold.restore_tenant(&ckpt, 0),
        Err(ServiceError::Migrate(MigrateError::PlaneUnavailable { .. }))
    ));

    // a truly incompatible destination refuses outright: a *smaller*
    // grid cannot embed the checkpointed plane …
    let mut narrow = ShardedService::new(
        1,
        FabricParams {
            width: 3,
            ..FabricParams::default()
        },
        TechParams::default(),
    )
    .unwrap();
    assert!(matches!(
        narrow.restore_tenant(&ckpt, 0),
        Err(ServiceError::Migrate(MigrateError::GeometryMismatch { .. }))
    ));
    // … and neither can a grid whose tiles have a different resource
    // shape, however large
    let mut fat = ShardedService::new(
        1,
        FabricParams {
            width: 10,
            height: 10,
            channel_width: FabricParams::default().channel_width + 1,
            ..FabricParams::default()
        },
        TechParams::default(),
    )
    .unwrap();
    assert!(matches!(
        fat.restore_tenant(&ckpt, 0),
        Err(ServiceError::Migrate(MigrateError::GeometryMismatch { .. }))
    ));
}

/// Regression for the old exact-geometry false reject: a checkpoint from
/// a smaller fabric restores onto a larger host of the same tile shape —
/// the plane is pad-and-remapped — and answers bit-for-bit what its
/// never-migrated twin answers.
#[test]
fn smaller_geometry_checkpoint_restores_onto_larger_host() {
    let parity = generators::parity_tree(3).unwrap();
    let small = FabricParams {
        width: 8,
        height: 8,
        ..FabricParams::default()
    };
    let big = FabricParams {
        width: 10,
        height: 10,
        contexts: 8,
        ..FabricParams::default()
    };
    let mut src = ShardedService::new(1, small, TechParams::default()).unwrap();
    let mover = src.admit("mover", &parity).unwrap();
    let twin = src.admit("twin", &parity).unwrap();
    submit3(&mut src, mover, 0b110);
    submit3(&mut src, twin, 0b110);

    // checkpoint the mover (pending request travels), ship its plane —
    // the big host never routed the design, so the digest alone would
    // dead-end in PlaneUnavailable
    let ckpt = src.checkpoint_tenant(mover).unwrap();
    let mut dst = ShardedService::new(1, big, TechParams::default()).unwrap();
    assert!(matches!(
        dst.restore_tenant(&ckpt, 0),
        Err(ServiceError::Migrate(MigrateError::PlaneUnavailable { .. }))
    ));
    let plane = src.export_plane(ckpt.digest).expect("source holds plane");
    dst.import_plane(ckpt.digest, plane);

    // the old code rejected this restore with GeometryMismatch
    let (restored, fresh) = dst.restore_tenant(&ckpt, 0).unwrap();
    assert_eq!(fresh.len(), 1);
    src.retire_tenant(mover).unwrap();

    // bit-for-bit: the restored 8x8 tenant on the 10x10 host answers
    // exactly what the never-migrated twin answers on the 8x8 source
    let dst_responses = dst.drain().unwrap();
    let src_responses = src.drain().unwrap();
    let moved: Vec<_> = dst_responses
        .iter()
        .filter(|r| r.tenant == restored)
        .collect();
    let stayed: Vec<_> = src_responses.iter().filter(|r| r.tenant == twin).collect();
    assert_eq!(moved.len(), 1);
    assert_eq!(stayed.len(), 1);
    assert_eq!(moved[0].outputs, stayed[0].outputs);
    assert!(!moved[0].outputs[0].1, "parity(1,1,0) is even");

    // the retired source id is dead; the twin still serves
    assert!(src.usage(mover).is_err());
    submit3(&mut src, twin, 0b000);
    assert_eq!(src.drain().unwrap().len(), 1);
}

/// The cold-cache recovery path: a fresh node that never compiled the
/// design re-provisions the plane from the source netlist, keyed by the
/// checkpoint's digest — then the restore proceeds normally.
#[test]
fn fresh_node_restore_reprovisions_plane_from_netlist() {
    let parity = generators::parity_tree(3).unwrap();
    let mut src = service(1);
    let t = src.admit("roamer", &parity).unwrap();
    submit3(&mut src, t, 0b011);
    let ckpt = src.checkpoint_tenant(t).unwrap();

    // fresh node: digest-only restore dead-ends …
    let mut cold = service(2);
    assert!(matches!(
        cold.restore_tenant(&ckpt, 0),
        Err(ServiceError::Migrate(MigrateError::PlaneUnavailable { .. }))
    ));
    // … but provisioning from the shipped netlist reproduces the exact
    // routed configuration (deterministic per-slot seeding) and caches it
    cold.provision_plane(ckpt.digest, &parity, ckpt.params)
        .unwrap();
    let (restored, fresh) = cold.restore_tenant(&ckpt, 0).unwrap();
    assert_eq!(fresh.len(), 1);
    let responses = cold.drain().unwrap();
    let ours: Vec<_> = responses.iter().filter(|r| r.tenant == restored).collect();
    assert_eq!(ours.len(), 1);
    assert!(!ours[0].outputs[0].1, "parity(0,1,1) is even");

    // a *different* design never provisions under this digest
    let other = generators::wire_lanes(1).unwrap();
    let mut cold2 = service(1);
    assert!(matches!(
        cold2.provision_plane(ckpt.digest, &other, ckpt.params),
        Err(ServiceError::Migrate(
            MigrateError::NetlistDigestMismatch { .. }
        ))
    ));
    // provisioning is idempotent once cached
    cold.provision_plane(ckpt.digest, &parity, ckpt.params)
        .unwrap();
}

/// Directed-migration error surface: bad shard, full shard.
#[test]
fn migration_error_paths() {
    let mut svc = service(2);
    let wire = generators::wire_lanes(1).unwrap();
    let t = svc.admit("t", &wire).unwrap();
    assert!(matches!(
        svc.migrate_tenant(t, 9),
        Err(ServiceError::NoSuchShard {
            shard: 9,
            shards: 2
        })
    ));
    // fill shard 1 completely
    let contexts = svc.params().contexts;
    let mut filled = 1; // t already on shard 0
    while filled < 2 * contexts {
        svc.admit(&format!("f{filled}"), &wire).unwrap();
        filled += 1;
    }
    assert!(matches!(
        svc.migrate_tenant(t, 1),
        Err(ServiceError::Migrate(MigrateError::NoFreeSlot { shard: 1 }))
    ));
    // intra-shard moves are allowed when a slot is free — but here the
    // whole pool is full
    assert!(matches!(
        svc.migrate_tenant(t, 0),
        Err(ServiceError::Migrate(MigrateError::NoFreeSlot { shard: 0 }))
    ));
}

/// Review regression: a tenant migrated *while its plane was faulted*
/// seeds the destination from the corrupted plane (which binds nothing) —
/// repair must re-establish the canonical prefix, or the tenant would
/// accept under-driven requests forever after.
#[test]
fn repair_after_faulted_migration_restores_submit_validation() {
    let mut svc = service(2);
    let parity = generators::parity_tree(3).unwrap();
    let t = svc.admit("t", &parity).unwrap();
    svc.inject_plane_fault(t).unwrap();
    svc.migrate_tenant(t, 1).unwrap();
    svc.repair_plane(t).unwrap();
    let err = svc.submit(t, &[("x0", true)]).unwrap_err();
    assert!(
        matches!(err, ServiceError::MissingInput { .. }),
        "under-driven request accepted after faulted migration + repair: {err}"
    );
    submit3(&mut svc, t, 0b100);
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 1);
    assert!(responses[0].outputs[0].1, "parity(0,0,1)");
}

/// Review regression: restoring a checkpoint with NO pending work must
/// not erase the freshly seeded slot's canonical prefix — the restored
/// tenant still refuses under-driven requests exactly like a fresh one.
#[test]
fn empty_pending_restore_keeps_submit_validation() {
    let mut svc = service(2);
    let parity = generators::parity_tree(3).unwrap();
    let t = svc.admit("t", &parity).unwrap();
    let ckpt = svc.checkpoint_tenant(t).unwrap();
    assert_eq!(ckpt.pending.lanes, 0);
    let (clone, fresh) = svc.restore_tenant(&ckpt, 1).unwrap();
    assert!(fresh.is_empty());
    // an under-driven request is still refused (x2 left undriven) …
    let err = svc
        .submit(clone, &[("x0", true), ("x1", true), ("oops", true)])
        .unwrap_err();
    assert!(matches!(err, ServiceError::MissingInput { ref name } if name == "x2"));
    // … and a fully driven one is answered correctly
    submit3(&mut svc, clone, 0b111);
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 1);
    assert!(responses[0].outputs[0].1, "parity(1,1,1)");
}

/// Review regression: an intra-shard move bills realignment against the
/// post-move occupancy — the vacated context no longer counts. (With
/// contexts 0,1,2 occupied and the ctx-1 tenant moving to ctx 3, the
/// shard's sweep goes {0,2} → {0,2,3}: 2 → 6 toggles, a 4-toggle charge;
/// counting the vacated ctx 1 in both sweeps would misbill 2.)
#[test]
fn intra_shard_migration_bills_post_move_occupancy() {
    let mut svc = service(1);
    let wire = generators::wire_lanes(1).unwrap();
    let _t0 = svc.admit("t0", &wire).unwrap(); // ctx 0
    let mover = svc.admit("mover", &wire).unwrap(); // ctx 1
    let _t2 = svc.admit("t2", &wire).unwrap(); // ctx 2
    let dst = svc.migrate_tenant(mover, 0).unwrap();
    assert_eq!(dst, Placement { shard: 0, ctx: 3 }, "only free slot");
    assert_eq!(svc.usage(mover).unwrap().migration_css_toggles, 4);
}

/// A checkpoint's CSS sweep position is adopted when restoring onto an
/// *idle* shard (reconstructing the source's boundary state), and left
/// alone on a shard with resident tenants — observable through the
/// realignment bill, which is charged from the broadcast's position.
#[test]
fn restore_adopts_sweep_position_only_on_idle_shards() {
    let mut svc = service(2);
    let parity = generators::parity_tree(3).unwrap();
    let t = svc.admit("t", &parity).unwrap(); // shard 0, ctx 0

    let mut ckpt = svc.checkpoint_tenant(t).unwrap();
    ckpt.css_position = 1; // the source broadcast sat on ctx 1
    let (first, _) = svc.restore_tenant(&ckpt, 1).unwrap(); // shard 1 idle
                                                            // idle shard adopts position 1; landing the tenant on ctx 0 is a
                                                            // polarity flip on the hybrid CSS: 4 realignment toggles
    assert_eq!(svc.usage(first).unwrap().migration_css_toggles, 4);

    let mut again = svc.checkpoint_tenant(t).unwrap();
    again.css_position = 3;
    let (second, _) = svc.restore_tenant(&again, 1).unwrap();
    // shard 1 is occupied now: its own position (1) is kept, not 3. The
    // second tenant lands on ctx 2 (cheapest marginal), and the sweep
    // {0} → {0,2} replanned from ctx 1 costs 6 − 4 = 2 toggles
    assert_eq!(
        svc.registry().tenant(second).unwrap().placement,
        Placement { shard: 1, ctx: 2 }
    );
    assert_eq!(svc.usage(second).unwrap().migration_css_toggles, 2);
}

/// Energy-aware destination choice: the chosen slot is the cheapest
/// marginal addition to the destination shard's sweep, with the no-rebase
/// context preferred only on ties (mirrors admission placement).
#[test]
fn migration_destination_is_energy_scored() {
    let mut svc = service(2);
    let wire = generators::wire_lanes(1).unwrap();
    let parity = generators::parity_tree(3).unwrap();
    let mover = svc.admit("mover", &parity).unwrap(); // shard 0, ctx 0
    let _anchor = svc.admit("anchor", &wire).unwrap(); // shard 1, ctx 0
                                                       // shard 1 holds ctx 0; on the hybrid CSS, ctx 2 (same polarity) adds
                                                       // 2 toggles where ctx 1 (polarity flip) adds 4 — and the energy
                                                       // ranking beats the no-rebase affinity for ctx 0 (occupied anyway)
    let dst = svc.migrate_tenant(mover, 1).unwrap();
    assert_eq!(dst, Placement { shard: 1, ctx: 2 });
    let usage = svc.usage(mover).unwrap();
    assert_eq!(usage.migration_css_toggles, 2, "marginal join cost billed");
}

/// Checkpoints cross lane-width boundaries: a tenant checkpointed on the
/// 256-wide default restores onto a 64-wide service bit-for-bit as long
/// as its pending lanes fit, and a 64-wide checkpoint restores onto the
/// wide default unchanged. A checkpoint whose pending lanes exceed the
/// destination's width is a typed refusal, not silent truncation.
#[test]
fn checkpoints_roundtrip_across_lane_widths() {
    let parity = generators::parity_tree(3).unwrap();

    // wide source → narrow destination
    let mut src = service(1);
    assert_eq!(src.lane_width(), 256);
    let t = src.admit("roamer", &parity).unwrap();
    submit3(&mut src, t, 0b101);
    let ckpt = TenantCheckpoint::from_bytes(&src.checkpoint_tenant(t).unwrap().to_bytes()).unwrap();
    let mut narrow = service(2);
    narrow.set_lane_width(64).unwrap();
    narrow.admit("seeder", &parity).unwrap();
    let (restored, fresh) = narrow.restore_tenant(&ckpt, 1).unwrap();
    assert_eq!(fresh.len(), 1);
    let out: Vec<_> = narrow
        .drain()
        .unwrap()
        .into_iter()
        .filter(|r| r.tenant == restored)
        .collect();
    assert_eq!(out.len(), 1);
    assert!(!out[0].outputs[0].1, "parity(1,0,1) = 0");

    // narrow source → wide destination
    let mut nsrc = service(1);
    nsrc.set_lane_width(64).unwrap();
    let nt = nsrc.admit("roamer", &parity).unwrap();
    submit3(&mut nsrc, nt, 0b110);
    let nckpt = nsrc.checkpoint_tenant(nt).unwrap();
    let mut wide = service(2);
    wide.admit("seeder", &parity).unwrap();
    let (wrestored, _) = wide.restore_tenant(&nckpt, 1).unwrap();
    let wout: Vec<_> = wide
        .drain()
        .unwrap()
        .into_iter()
        .filter(|r| r.tenant == wrestored)
        .collect();
    assert_eq!(wout.len(), 1);
    assert!(!wout[0].outputs[0].1, "parity(0,1,1) = 0");

    // oversized pending batch cannot squeeze into a narrower slot
    let mut fat = service(1);
    let ft = fat.admit("fat", &parity).unwrap();
    for v in 0..65u32 {
        submit3(&mut fat, ft, v);
    }
    let fat_ckpt = fat.checkpoint_tenant(ft).unwrap();
    assert_eq!(fat_ckpt.pending.lanes, 65);
    let mut tight = service(2);
    tight.set_lane_width(64).unwrap();
    tight.admit("seeder", &parity).unwrap();
    assert!(
        tight.restore_tenant(&fat_ckpt, 1).is_err(),
        "65 pending lanes must not restore into a 64-lane slot"
    );
}
