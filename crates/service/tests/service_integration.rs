//! End-to-end tests of the multi-tenant batched execution service:
//! correctness against the netlist reference evaluator, lane-full
//! auto-flush, plane-cache behaviour, capacity limits and per-tenant
//! energy attribution.

use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::LANES;
use mcfpga_fabric::netlist_ir::{generators, LogicNetlist};
use mcfpga_fabric::FabricParams;
use mcfpga_service::{OptimizeMode, PlacementPolicy, ServiceError, ShardedService};

fn service(shards: usize) -> ShardedService {
    ShardedService::new(
        shards,
        FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            ..FabricParams::default()
        },
        TechParams::default(),
    )
    .expect("service")
}

/// Input names of a netlist, in declaration order.
fn input_names(nl: &LogicNetlist) -> Vec<String> {
    nl.input_ids()
        .into_iter()
        .map(|id| match nl.node(id) {
            mcfpga_fabric::netlist_ir::Node::Input { name } => name.clone(),
            _ => unreachable!(),
        })
        .collect()
}

#[test]
fn batched_responses_match_reference_eval() {
    let mut svc = service(2);
    let designs = [
        ("parity", generators::parity_tree(4).unwrap()),
        ("compare", generators::equality_comparator(3).unwrap()),
        ("popcount", generators::popcount4().unwrap()),
    ];
    let tenants: Vec<_> = designs
        .iter()
        .map(|(name, nl)| svc.admit(name, nl).unwrap())
        .collect();

    // 17 requests per tenant (odd count: no tenant fills a full batch)
    let mut expected = Vec::new();
    for ((_, nl), &tenant) in designs.iter().zip(&tenants) {
        let names = input_names(nl);
        for k in 0..17u64 {
            let scalar: Vec<(String, bool)> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), (k >> (i % 6)) & 1 == 1))
                .collect();
            let refs: Vec<(&str, bool)> = scalar.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let mut want = nl.eval(&refs).unwrap();
            want.sort();
            let id = svc.submit(tenant, &refs).unwrap();
            expected.push((id, tenant, want));
        }
    }
    assert_eq!(svc.pending_requests(), 3 * 17);

    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 3 * 17);
    assert_eq!(svc.pending_requests(), 0);
    for (id, tenant, want) in expected {
        let resp = responses.iter().find(|r| r.request == id).unwrap();
        assert_eq!(resp.tenant, tenant);
        let mut got: Vec<(String, bool)> = resp
            .outputs
            .iter()
            .map(|(n, v)| (n.to_string(), *v))
            .collect();
        got.sort();
        assert_eq!(got, want, "request {id}");
    }

    // each tenant's 17 requests rode exactly one bit-parallel pass
    for &t in &tenants {
        let u = svc.usage(t).unwrap();
        assert_eq!(u.requests, 17);
        assert_eq!(u.passes, 1);
    }
}

#[test]
fn lane_full_slot_flushes_without_drain() {
    let mut svc = service(1);
    // narrow the datapath to one chunk word so the auto-flush threshold
    // is reachable with 64 submits
    svc.set_lane_width(LANES).unwrap();
    let nl = generators::parity_tree(3).unwrap();
    let tenant = svc.admit("parity", &nl).unwrap();
    for k in 0..LANES as u64 {
        svc.submit(
            tenant,
            &[("x0", k & 1 == 1), ("x1", k & 2 == 2), ("x2", k & 4 == 4)],
        )
        .unwrap();
    }
    // the 64th submit triggered the pass; nothing is parked any more
    assert_eq!(svc.pending_requests(), 0);
    assert_eq!(svc.usage(tenant).unwrap().passes, 1);
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), LANES);
    for (lane, resp) in responses.iter().enumerate() {
        let k = lane as u64;
        let want = ((k & 7).count_ones() % 2) == 1;
        assert_eq!(resp.outputs[0].1, want, "lane {lane}");
    }
    // a perfectly full pass: 64 vectors per pass on the bill
    assert_eq!(svc.bill(tenant).unwrap().vectors_per_pass, 64.0);
}

#[test]
fn identical_readmission_hits_the_plane_cache() {
    let mut svc = service(2);
    let nl = generators::parity_tree(4).unwrap();
    // tenant 0 → shard 0 ctx 0; tenant 1 → shard 1 ctx 0: same slot index,
    // same deterministic routing seed, identical netlist ⇒ identical digest
    let a = svc.admit("a", &nl).unwrap();
    assert_eq!((svc.cache().hits(), svc.cache().misses()), (0, 1));
    let b = svc.admit("b", &nl).unwrap();
    assert_eq!(
        (svc.cache().hits(), svc.cache().misses()),
        (1, 1),
        "re-admitting an identical configuration must not recompile"
    );
    assert_eq!(
        svc.registry().tenant(a).unwrap().digest,
        svc.registry().tenant(b).unwrap().digest
    );
    // a different design on the next slot compiles fresh
    svc.admit("c", &generators::popcount4().unwrap()).unwrap();
    assert_eq!(svc.cache().misses(), 2);

    // both cached-plane tenants still answer correctly and independently
    svc.submit(
        a,
        &[("x0", true), ("x1", false), ("x2", false), ("x3", false)],
    )
    .unwrap();
    svc.submit(
        b,
        &[("x0", true), ("x1", true), ("x2", false), ("x3", false)],
    )
    .unwrap();
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().any(|r| r.tenant == a && r.outputs[0].1));
    assert!(responses.iter().any(|r| r.tenant == b && !r.outputs[0].1));
}

#[test]
fn capacity_exhausted_is_reported() {
    let mut svc = service(1); // 1 shard × 4 contexts
    let nl = generators::wire_lanes(1).unwrap();
    for i in 0..4 {
        svc.admit(&format!("t{i}"), &nl).unwrap();
    }
    assert!(matches!(
        svc.admit("overflow", &nl),
        Err(ServiceError::CapacityExhausted {
            shards: 1,
            contexts: 4
        })
    ));
}

#[test]
fn unknown_tenant_is_rejected() {
    let mut svc = service(1);
    let id = svc.admit("a", &generators::wire_lanes(1).unwrap()).unwrap();
    let mut other = service(1);
    other
        .admit("x", &generators::wire_lanes(1).unwrap())
        .unwrap();
    other
        .admit("y", &generators::wire_lanes(1).unwrap())
        .unwrap();
    let foreign = other
        .admit("z", &generators::wire_lanes(1).unwrap())
        .unwrap();
    // `foreign` indexes tenant 2, which `svc` never issued
    assert!(matches!(
        svc.submit(foreign, &[]),
        Err(ServiceError::UnknownTenant(2))
    ));
    assert!(svc.usage(id).is_ok());
}

#[test]
fn request_missing_a_bound_input_is_rejected_at_submit() {
    let mut svc = service(1);
    let nl = generators::parity_tree(3).unwrap();
    let t = svc.admit("parity", &nl).unwrap();
    // a sibling request drives all inputs; without submit-time validation
    // the short request below would silently evaluate with x2 = 0
    svc.submit(t, &[("x0", false), ("x1", false), ("x2", true)])
        .unwrap();
    let err = svc.submit(t, &[("x0", true), ("x1", false)]).unwrap_err();
    assert!(matches!(err, ServiceError::MissingInput { ref name } if name == "x2"));
    assert_eq!(svc.pending_requests(), 1, "rejected request never queued");
    assert_eq!(svc.usage(t).unwrap().requests, 1);
    // extra names the plane does not bind are harmless
    svc.submit(
        t,
        &[("x0", true), ("x1", false), ("x2", false), ("zz", true)],
    )
    .unwrap();
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 2);
    assert!(responses[0].outputs[0].1, "parity(0,0,1) = 1");
    assert!(responses[1].outputs[0].1, "parity(1,0,0) = 1");
    assert!(svc.take_faults().is_empty());
}

#[test]
fn duplicate_bound_input_names_still_submit() {
    // two primary inputs sharing one name produce two identically-named
    // bind entries; coverage must require the *distinct* name once, not
    // reject every request for the tenant
    let mut nl = LogicNetlist::new();
    let a = nl.add_input("x");
    let b = nl.add_input("x");
    let o = nl.add_lut("or", &[a, b], 0b1110).unwrap();
    nl.add_output("y", o).unwrap();
    let mut svc = service(1);
    let t = svc.admit("dup", &nl).unwrap();
    svc.submit(t, &[("x", true)]).unwrap();
    svc.submit(t, &[("x", false)]).unwrap();
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 2);
    assert!(responses[0].outputs[0].1, "x|x with x=1");
    assert!(!responses[1].outputs[0].1, "x|x with x=0");
}

#[test]
fn discard_pending_removes_requests_from_the_bill() {
    let mut svc = service(1);
    let nl = generators::wire_lanes(1).unwrap();
    let t = svc.admit("wire", &nl).unwrap();
    svc.submit(t, &[("in0", true)]).unwrap();
    svc.submit(t, &[("in0", false)]).unwrap();
    assert_eq!(svc.discard_pending(t).unwrap(), 2);
    assert_eq!(svc.usage(t).unwrap().requests, 0, "discarded != served");
    // two served requests in one pass: vectors_per_pass stays physical
    svc.submit(t, &[("in0", true)]).unwrap();
    svc.submit(t, &[("in0", true)]).unwrap();
    assert_eq!(svc.drain().unwrap().len(), 2);
    assert_eq!(svc.bill(t).unwrap().vectors_per_pass, 2.0);
}

/// Energy-aware placement lands the second tenant on a same-polarity
/// context (0 and 2: 2 toggles per switch) where round-robin packs
/// contexts 0 and 1 (polarity flip: 4 toggles) — so the *same workload*
/// spends measurably fewer broadcast toggles, before any sweep
/// reordering (both services run naive sweeps here to isolate placement).
#[test]
fn energy_aware_placement_beats_round_robin_on_sweep_toggles() {
    let run = |policy: PlacementPolicy| {
        let mut svc = ShardedService::with_policies(
            1,
            FabricParams {
                width: 5,
                height: 5,
                channel_width: 3,
                ..FabricParams::default()
            },
            TechParams::default(),
            OptimizeMode::Naive,
            policy,
        )
        .unwrap();
        let nl = generators::wire_lanes(1).unwrap();
        let a = svc.admit("a", &nl).unwrap();
        let b = svc.admit("b", &nl).unwrap();
        // sparse ping-pong: every drain sweeps both tenants' contexts
        for i in 0..8 {
            svc.submit(a, &[("in0", i % 2 == 0)]).unwrap();
            svc.submit(b, &[("in0", i % 2 == 1)]).unwrap();
            let responses = svc.drain().unwrap();
            assert_eq!(responses.len(), 2);
        }
        svc.usage(a).unwrap().css_toggles + svc.usage(b).unwrap().css_toggles
    };
    let round_robin = run(PlacementPolicy::RoundRobin);
    let energy_aware = run(PlacementPolicy::EnergyAware);
    assert!(
        energy_aware < round_robin,
        "energy-aware placement must cut sweep toggles \
         ({energy_aware} vs {round_robin})"
    );
}

/// Energy-aware placement's affinity tie-break prefers the context index
/// an identical netlist landed on before: deterministic per-slot routing
/// then reproduces the same `context_digest`, so the second admission is
/// a plane-cache hit even though it sits on a different shard.
#[test]
fn energy_aware_placement_reuses_planes_across_shards() {
    let mut svc = ShardedService::with_policies(
        2,
        FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            ..FabricParams::default()
        },
        TechParams::default(),
        OptimizeMode::Optimized,
        PlacementPolicy::EnergyAware,
    )
    .unwrap();
    let nl = generators::parity_tree(4).unwrap();
    let a = svc.admit("a", &nl).unwrap();
    let b = svc.admit("b", &nl).unwrap();
    let (pa, pb) = (
        svc.registry().tenant(a).unwrap().placement,
        svc.registry().tenant(b).unwrap().placement,
    );
    assert_ne!(pa.shard, pb.shard, "marginal cost spreads across shards");
    assert_eq!(pa.ctx, pb.ctx, "affinity reuses the context index");
    assert_eq!(
        (svc.cache().hits(), svc.cache().misses()),
        (1, 1),
        "identical netlist on the affinity slot must not recompile"
    );
    // both tenants answer correctly from the shared plane
    let inputs = [("x0", true), ("x1", false), ("x2", false), ("x3", false)];
    svc.submit(a, &inputs).unwrap();
    svc.submit(b, &inputs).unwrap();
    let responses = svc.drain().unwrap();
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().all(|r| r.outputs[0].1), "parity(1,0,0,0)");
}

/// Switching `OptimizeMode` mid-flight is safe (any sweep order is
/// output-equivalent), and under `Naive` the baseline accounting equals
/// the actual charge.
#[test]
fn optimize_mode_toggles_at_runtime() {
    let mut svc = service(1);
    assert_eq!(svc.optimize_mode(), OptimizeMode::Optimized);
    svc.set_optimize_mode(OptimizeMode::Naive);
    let nl = generators::wire_lanes(1).unwrap();
    let tenants: Vec<_> = (0..3)
        .map(|i| svc.admit(&format!("t{i}"), &nl).unwrap())
        .collect();
    for &t in &tenants {
        svc.submit(t, &[("in0", true)]).unwrap();
    }
    assert_eq!(svc.drain().unwrap().len(), 3);
    for &t in &tenants {
        let u = svc.usage(t).unwrap();
        assert_eq!(
            u.css_toggles, u.css_toggles_baseline,
            "naive mode is its own baseline"
        );
        assert_eq!(svc.bill(t).unwrap().css_energy_saved_j, 0.0);
    }
    // back to optimized: the sweep saves toggles against the baseline
    svc.set_optimize_mode(OptimizeMode::Optimized);
    for _ in 0..4 {
        for &t in &tenants {
            svc.submit(t, &[("in0", false)]).unwrap();
        }
        svc.drain().unwrap();
    }
    let toggles: usize = tenants
        .iter()
        .map(|&t| svc.usage(t).unwrap().css_toggles)
        .sum();
    let baseline: usize = tenants
        .iter()
        .map(|&t| svc.usage(t).unwrap().css_toggles_baseline)
        .sum();
    assert!(toggles < baseline, "optimized sweeps must show savings");
    let saved: f64 = tenants
        .iter()
        .map(|&t| svc.bill(t).unwrap().css_energy_saved_j)
        .sum();
    assert!(saved > 0.0);
}

#[test]
fn css_energy_is_attributed_to_the_switched_in_tenant() {
    let mut svc = service(1);
    let nl = generators::wire_lanes(1).unwrap();
    let t0 = svc.admit("busy", &nl).unwrap(); // ctx 0
    let t1 = svc.admit("other", &nl).unwrap(); // ctx 1
    let t2 = svc.admit("idle", &nl).unwrap(); // ctx 2

    // ping-pong between t0 and t1; t2 never submits
    for _ in 0..3 {
        svc.submit(t0, &[("in0", true)]).unwrap();
        svc.submit(t1, &[("in0", false)]).unwrap();
        svc.drain().unwrap();
    }
    let u0 = svc.usage(t0).unwrap();
    let u1 = svc.usage(t1).unwrap();
    let u2 = svc.usage(t2).unwrap();
    assert_eq!((u0.passes, u1.passes, u2.passes), (3, 3, 0));
    // every sweep switches 1→0 then 0→1 (first sweep starts on 0: free)
    assert!(u1.css_toggles > 0, "t1 pays for being switched in");
    assert!(
        u1.css_toggles >= u0.css_toggles,
        "t0 starts as the resident"
    );
    assert_eq!(u2.css_toggles, 0, "idle tenant is never switched in");
    assert_eq!(svc.bill(t2).unwrap().dynamic_energy_j, 0.0);
    let report = svc.billing_report();
    for name in ["busy", "other", "idle"] {
        assert!(report.contains(name), "billing table lists {name}");
    }
}

/// The chunked datapath's headline: 256 single-vector requests to one
/// tenant ride **one** fabric pass at the default width, and the demuxed
/// answers are bit-for-bit what four independent 64-lane passes produce.
#[test]
fn a_256_request_burst_is_one_pass_and_matches_four_narrow_passes() {
    let nl = generators::parity_tree(3).unwrap();
    let vector = |k: u64| [("x0", k & 1 == 1), ("x1", k & 2 == 2), ("x2", k & 4 == 4)];

    let mut wide = service(1);
    assert_eq!(wide.lane_width(), 256, "chunked width is the default");
    let wt = wide.admit("parity", &nl).unwrap();
    for k in 0..256u64 {
        wide.submit(wt, &vector(k)).unwrap();
    }
    // lane 256 filled the slot: the chunked pass already ran
    assert_eq!(wide.pending_requests(), 0);
    assert_eq!(wide.usage(wt).unwrap().passes, 1);
    let wide_out: Vec<Vec<(String, bool)>> = wide
        .drain()
        .unwrap()
        .into_iter()
        .map(|r| r.outputs.iter().map(|(n, v)| (n.to_string(), *v)).collect())
        .collect();
    assert_eq!(wide_out.len(), 256);

    let mut narrow = service(1);
    narrow.set_lane_width(LANES).unwrap();
    let nt = narrow.admit("parity", &nl).unwrap();
    for k in 0..256u64 {
        narrow.submit(nt, &vector(k)).unwrap();
    }
    assert_eq!(narrow.usage(nt).unwrap().passes, 4, "four 64-lane flushes");
    let narrow_out: Vec<Vec<(String, bool)>> = narrow
        .drain()
        .unwrap()
        .into_iter()
        .map(|r| r.outputs.iter().map(|(n, v)| (n.to_string(), *v)).collect())
        .collect();
    assert_eq!(wide_out, narrow_out, "chunked pass diverged from 4×64");
    assert_eq!(
        wide.bill(wt).unwrap().vectors_per_pass,
        256.0,
        "a perfectly full chunked pass"
    );
}

/// Dirty-cone incremental sweeps: resubmitting identical vectors to a
/// kernel-eligible plane skips the whole cone (the cached per-slot state
/// already holds the answer) while a changed vector re-runs it — and the
/// responses are identical either way. The skip shows up in the
/// deterministic `fabric_ops_skipped` counter.
#[test]
fn identical_resubmission_skips_the_dirty_cone() {
    let mut svc = service(1);
    let nl = generators::parity_tree(4).unwrap();
    let t = svc.admit("parity", &nl).unwrap();
    let inputs = [("x0", true), ("x1", false), ("x2", true), ("x3", false)];
    let registry = svc.telemetry().registry().clone();
    let counter = move |name: &str| registry.counter_value(name).unwrap_or(0);

    svc.submit(t, &inputs).unwrap();
    let first = svc.drain().unwrap();
    assert_eq!(counter("fabric_ops_skipped"), 0, "first sweep runs cold");
    let total_after_first = counter("fabric_ops_total");
    assert!(total_after_first > 0, "kernel sweep reports its op count");
    assert_eq!(counter("fabric_kernel_evals"), 1);

    // same vector again: the plan-phase diff finds zero dirty lanes and
    // the whole op program is skipped
    svc.submit(t, &inputs).unwrap();
    let second = svc.drain().unwrap();
    let skipped = counter("fabric_ops_skipped");
    assert_eq!(
        skipped, total_after_first,
        "an unchanged sweep skips every op"
    );
    assert_eq!(
        counter("fabric_ops_total"),
        2 * total_after_first,
        "ops_total counts planned ops whether or not they ran"
    );
    assert_eq!(first[0].outputs, second[0].outputs, "skip is invisible");

    // flip one input: ops in x0's cone re-run, ops outside it (the
    // routing and LUTs fed only by x1..x3) stay skipped, and the answer
    // flips with the input
    svc.submit(
        t,
        &[("x0", false), ("x1", false), ("x2", true), ("x3", false)],
    )
    .unwrap();
    let third = svc.drain().unwrap();
    let skipped_partial = counter("fabric_ops_skipped") - skipped;
    assert!(
        skipped_partial > 0 && skipped_partial < total_after_first,
        "a one-input change skips some ops but re-runs x0's cone \
         ({skipped_partial} of {total_after_first} skipped)"
    );
    assert_ne!(first[0].outputs[0].1, third[0].outputs[0].1);
    assert_eq!(counter("fabric_kernel_evals"), 3);
}

#[test]
fn lane_width_rejects_bad_values_and_pending_work() {
    let mut svc = service(1);
    assert!(matches!(
        svc.set_lane_width(0),
        Err(ServiceError::BadConfig(_))
    ));
    assert!(matches!(
        svc.set_lane_width(257),
        Err(ServiceError::BadConfig(_))
    ));
    let nl = generators::wire_lanes(1).unwrap();
    let t = svc.admit("w", &nl).unwrap();
    svc.submit(t, &[("in0", true)]).unwrap();
    // a queued request pins the width: resizing would orphan its lane
    assert!(matches!(
        svc.set_lane_width(LANES),
        Err(ServiceError::BadConfig(_))
    ));
    svc.drain().unwrap();
    svc.set_lane_width(LANES).unwrap();
    assert_eq!(svc.lane_width(), LANES);
    // the resized slot still answers
    svc.submit(t, &[("in0", true)]).unwrap();
    let out = svc.drain().unwrap();
    assert_eq!(out.len(), 1);
    assert!(out[0].outputs[0].1);
}
