//! Energy-aware tenant → `(shard, context)` slot placement.
//!
//! Round-robin admission spreads tenants across shards but is blind to
//! *which context slot* it hands out — and on the hybrid CSS the slot
//! choice decides what every future sweep costs: two tenants parked on
//! contexts 0 and 1 force a polarity flip (4 line toggles) on every
//! switch between them, while contexts 0 and 2 switch for 2.
//!
//! [`PlacementPolicy::EnergyAware`] scores each free slot by the
//! **marginal sweep cost** it adds to its shard: the optimized cost of
//! sweeping the shard's occupied contexts plus the candidate, minus the
//! optimized cost without it (both from the sequencer's home context 0,
//! using the same [`CostMatrix`] the executor charges by). Ties break
//! toward plane-cache affinity — a context index where the same netlist
//! was admitted before routes to an identical digest, so the compiled
//! plane is reused instead of recompiled — then toward emptier shards,
//! then the lowest slot.

use crate::registry::{Placement, TenantRegistry};
use crate::ServiceError;
use mcfpga_css::optimize::{sweep_cost, CostMatrix};
use mcfpga_fabric::netlist_ir::Node;
use mcfpga_fabric::LogicNetlist;

/// How [`crate::ShardedService`] assigns admitted tenants to slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Round-robin across shards, lowest free context slot per shard —
    /// the original admission order. Predictable, energy-blind.
    #[default]
    RoundRobin,
    /// Choose the free slot with the smallest marginal sweep cost for its
    /// shard (see the [module docs](self)); prefer plane-cache affinity on
    /// ties. Never changes *whether* a tenant is admitted, only *where*.
    EnergyAware,
}

/// Picks the free slot minimizing marginal sweep cost under `matrix`.
///
/// `affinity_ctx` is the context index the same netlist landed on at a
/// previous admission (deterministic per-slot routing makes its digest —
/// and therefore its compiled plane — reusable there); it only breaks ties
/// between equally cheap slots, never overrides the energy ranking.
pub(crate) fn choose_energy_aware(
    registry: &TenantRegistry,
    matrix: &CostMatrix,
    affinity_ctx: Option<usize>,
) -> Result<Placement, ServiceError> {
    match best_slot(registry, matrix, affinity_ctx, |_| true)? {
        Some(slot) => Ok(slot),
        // no free slots: reserve() surfaces the canonical CapacityExhausted
        None => registry.reserve(),
    }
}

/// The energy-aware slot chooser, generalized over an eligibility filter:
/// admission considers every free slot, a directed migration only the
/// destination shard's, an evacuation every shard *except* the source.
/// Scores each eligible free slot by the marginal optimized sweep cost it
/// adds to its shard (from the shard's home context 0); ties break toward
/// `affinity_ctx` — the slot index where the tenant's compiled plane works
/// as-is (admission: same digest in the cache; migration: no rebase) —
/// then toward emptier shards, then the lowest slot. `None` when no
/// eligible slot is free.
pub(crate) fn best_slot(
    registry: &TenantRegistry,
    matrix: &CostMatrix,
    affinity_ctx: Option<usize>,
    eligible: impl Fn(Placement) -> bool,
) -> Result<Option<Placement>, ServiceError> {
    Ok(best_slot_scored(registry, matrix, affinity_ctx, eligible)?.map(|s| s.slot))
}

/// The full lexicographic score [`best_slot_scored`] ranks slots by.
///
/// The cluster router compares these *across nodes*: each node reports
/// its best free slot's score, and the router admits to the node whose
/// score is smallest under the same
/// `(marginal cost, affinity miss, load)` ordering a single-node
/// admission uses, with the node index as the final tiebreak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotScore {
    /// Broadcast toggles the slot's shard gains per sweep when this slot
    /// joins its occupied set — the primary ranking key.
    pub marginal_toggles: usize,
    /// Did the slot miss the plane-cache affinity hint? (`false` sorts
    /// first: an affinity hit reuses a compiled plane.)
    pub affinity_miss: bool,
    /// Tenants already resident on the slot's shard.
    pub load: usize,
    /// The scored slot itself.
    pub slot: Placement,
}

impl SlotScore {
    /// The ranking key, for lexicographic comparison across candidates
    /// (smaller is better; compare equal-slot candidates by appending
    /// your own tiebreak, e.g. the node index).
    #[must_use]
    pub fn key(&self) -> (usize, bool, usize) {
        (self.marginal_toggles, self.affinity_miss, self.load)
    }
}

/// `best_slot`'s scoring, with the winning score exposed — the reusable
/// half the cluster router runs per node. Semantics are identical to an
/// energy-aware admission: free slots filtered by `eligible`, ranked by
/// `(marginal sweep cost from home context 0, affinity miss, shard load,
/// slot order)`. `None` when no eligible slot is free.
pub fn best_slot_scored(
    registry: &TenantRegistry,
    matrix: &CostMatrix,
    affinity_ctx: Option<usize>,
    eligible: impl Fn(Placement) -> bool,
) -> Result<Option<SlotScore>, ServiceError> {
    let mut best: Option<SlotScore> = None;
    for slot in registry.free_slots() {
        if !eligible(slot) {
            continue;
        }
        let occupied = registry.occupied_contexts(slot.shard);
        let before = sweep_cost(matrix, Some(0), &occupied)?;
        let mut with = occupied;
        with.push(slot.ctx);
        let marginal = sweep_cost(matrix, Some(0), &with)?.saturating_sub(before);
        let candidate = SlotScore {
            marginal_toggles: marginal,
            affinity_miss: affinity_ctx != Some(slot.ctx),
            load: with.len() - 1,
            slot,
        };
        // lexicographic: marginal cost, then affinity hit, then shard load,
        // then shard-major slot order (free_slots() is already sorted)
        let better = match &best {
            None => true,
            Some(b) => candidate.key() < b.key(),
        };
        if better {
            best = Some(candidate);
        }
    }
    Ok(best)
}

/// Structural fingerprint of a netlist (FNV-1a over nodes and outputs).
///
/// Two netlists with equal fingerprints route identically into the same
/// context slot (admission routing is seeded per slot), producing equal
/// [`mcfpga_fabric::Fabric::context_digest`]s — which is what makes the
/// fingerprint a sound plane-cache *affinity* hint. It is only a hint:
/// the digest itself, computed after routing, remains the cache key.
#[must_use]
pub fn netlist_fingerprint(nl: &LogicNetlist) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut put = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    for node in nl.nodes() {
        match node {
            Node::Input { name } => {
                put(&[0]);
                put(name.as_bytes());
            }
            Node::Lut { name, fanin, table } => {
                put(&[1]);
                put(name.as_bytes());
                for f in fanin {
                    put(&f.0.to_le_bytes());
                }
                put(&table.to_le_bytes());
            }
        }
    }
    for (name, node) in nl.outputs() {
        put(&[2]);
        put(name.as_bytes());
        put(&node.0.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_fabric::netlist_ir::generators;

    fn registry_with(shards: usize, contexts: usize, taken: &[(usize, usize)]) -> TenantRegistry {
        let mut reg = TenantRegistry::new(shards, contexts).unwrap();
        for &(shard, ctx) in taken {
            reg.commit(&format!("t{shard}_{ctx}"), Placement { shard, ctx }, 0);
        }
        reg
    }

    #[test]
    fn prefers_same_polarity_contexts() {
        // one tenant on ctx 0: the next should land on ctx 2 (2 toggles),
        // not ctx 1 (polarity flip, 4 toggles)
        let reg = registry_with(1, 4, &[(0, 0)]);
        let m = CostMatrix::hybrid(4).unwrap();
        let slot = choose_energy_aware(&reg, &m, None).unwrap();
        assert_eq!((slot.shard, slot.ctx), (0, 2));
    }

    #[test]
    fn empty_shards_win_before_costlier_slots() {
        // shard 0 holds ctx 0; shard 1 is empty — any slot there adds zero
        // marginal cost, so the empty shard wins
        let reg = registry_with(2, 4, &[(0, 0)]);
        let m = CostMatrix::hybrid(4).unwrap();
        let slot = choose_energy_aware(&reg, &m, None).unwrap();
        assert_eq!(slot.shard, 1);
    }

    #[test]
    fn affinity_breaks_ties_only() {
        let m = CostMatrix::hybrid(8).unwrap();
        // contexts 0 and 2 occupied: every remaining slot adds the same
        // marginal cost (4 toggles) — a genuine tie the affinity hint may
        // decide (ctx 6 would reuse a compiled plane)
        let reg = registry_with(1, 8, &[(0, 0), (0, 2)]);
        let slot = choose_energy_aware(&reg, &m, Some(6)).unwrap();
        assert_eq!(slot.ctx, 6);
        // without a hint the tie falls to the lowest slot
        let slot = choose_energy_aware(&reg, &m, None).unwrap();
        assert_eq!(slot.ctx, 1);
        // but affinity never overrides the energy ranking: with only ctx 0
        // occupied, ctx 1 costs 4 marginal while ctx 2 costs 2 — the hint
        // pointing at ctx 1 loses
        let reg = registry_with(1, 8, &[(0, 0)]);
        let slot = choose_energy_aware(&reg, &m, Some(1)).unwrap();
        assert_eq!(slot.ctx, 2);
    }

    #[test]
    fn best_slot_respects_eligibility_filter() {
        let reg = registry_with(2, 4, &[(0, 0)]);
        let m = CostMatrix::hybrid(4).unwrap();
        // evacuation-style filter: shard 0 excluded → must land on shard 1
        let slot = best_slot(&reg, &m, None, |p| p.shard != 0)
            .unwrap()
            .unwrap();
        assert_eq!(slot.shard, 1);
        // a filter admitting nothing yields None, not an error
        assert_eq!(best_slot(&reg, &m, None, |_| false).unwrap(), None);
        // and so does a genuinely full registry
        let full = registry_with(1, 4, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        assert_eq!(best_slot(&full, &m, None, |_| true).unwrap(), None);
    }

    #[test]
    fn full_registry_reports_capacity() {
        let reg = registry_with(1, 4, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let m = CostMatrix::hybrid(4).unwrap();
        assert!(matches!(
            choose_energy_aware(&reg, &m, None),
            Err(ServiceError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn fingerprints_separate_structures() {
        let a = generators::parity_tree(3).unwrap();
        let b = generators::parity_tree(3).unwrap();
        let c = generators::parity_tree(4).unwrap();
        let d = generators::wire_lanes(1).unwrap();
        assert_eq!(netlist_fingerprint(&a), netlist_fingerprint(&b));
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&c));
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&d));
    }
}
