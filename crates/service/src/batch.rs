//! Request coalescing: many tenants' single-vector requests become few
//! full-lane fabric passes.
//!
//! Each `(shard, context)` slot accumulates its own
//! [`LaneBatch`]; a request occupies
//! one of the 64 `u64` bit lanes. The queue only *holds* work — execution
//! (and therefore flushing policy) belongs to
//! [`crate::service::ShardedService`], which flushes a slot when its lanes
//! fill or when the caller drains.

use crate::registry::{Placement, TenantId};
use mcfpga_fabric::compiled::{LaneBatch, PushRefusal};
use std::sync::Arc;

/// Opaque handle of one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// The raw id, as recorded in checkpoint audit trails. There is no
    /// inverse: ids enter the system only through the queue's own counter,
    /// so a deserialized checkpoint can never mint an id that collides
    /// with (or resurrects) one this service issued.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One completed request: the tenant's outputs for its input vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request this answers.
    pub request: RequestId,
    /// The tenant that submitted it.
    pub tenant: TenantId,
    /// Named output values, demuxed from the request's lane. Names are
    /// `Arc<str>` shared across the up-to-64 responses of one pass, so
    /// demuxing a full batch performs no per-response string allocation.
    pub outputs: Vec<(Arc<str>, bool)>,
}

/// Work pending on one `(shard, context)` slot.
#[derive(Debug, Clone, Default)]
struct PendingSlot {
    batch: LaneBatch,
    tickets: Vec<(RequestId, TenantId)>,
    /// Length of the canonical (seeded, deduplicated) input-name prefix —
    /// what [`BatchQueue::enqueue`] requires every request to cover.
    seeded: usize,
}

/// Per-slot accumulation of single-vector requests into lane batches.
#[derive(Debug, Clone)]
pub struct BatchQueue {
    slots: Vec<Vec<PendingSlot>>,
    next_request: u64,
}

/// A slot's pending work, handed out by [`BatchQueue::take`].
#[derive(Debug, Clone)]
pub struct TakenBatch {
    /// The coalesced lane batch (non-empty).
    pub batch: LaneBatch,
    /// Per-lane `(request, tenant)` tickets, in lane order.
    pub tickets: Vec<(RequestId, TenantId)>,
}

impl BatchQueue {
    /// An empty queue over `shards × contexts` slots.
    #[must_use]
    pub fn new(shards: usize, contexts: usize) -> Self {
        BatchQueue {
            slots: vec![vec![PendingSlot::default(); contexts]; shards],
            next_request: 0,
        }
    }

    /// Seeds a slot's canonical input-name prefix (bound inputs, in bind
    /// order; duplicates collapse) so [`enqueue`](Self::enqueue) can verify
    /// coverage of every bound input within its single name-resolution
    /// scan. Call at admission and again after a [`take`](Self::take) that
    /// is not [`recycle`](Self::recycle)d (a fresh slot starts unseeded).
    pub fn seed<'a>(&mut self, shard: usize, ctx: usize, names: impl Iterator<Item = &'a str>) {
        let slot = &mut self.slots[shard][ctx];
        let mut prefix = 0;
        for name in names {
            slot.batch.ensure_name(name);
            let idx = slot
                .batch
                .name_index(name)
                .expect("name was just ensured into the union");
            prefix = prefix.max(idx + 1);
        }
        slot.seeded = prefix;
    }

    /// Enqueues one single-vector request on its tenant's slot, verifying
    /// it drives the slot's whole canonical prefix (see
    /// [`seed`](Self::seed)). Returns the issued request id and whether the
    /// slot's 64 lanes are now full (the caller should flush it before the
    /// next enqueue). [`PushRefusal::Full`] means the slot already holds a
    /// full, unflushed batch (a previous flush failed and left its requests
    /// queued); [`PushRefusal::MissingInput`] leaves the slot unchanged.
    pub fn enqueue(
        &mut self,
        placement: Placement,
        tenant: TenantId,
        inputs: &[(&str, bool)],
    ) -> Result<(RequestId, bool), PushRefusal> {
        let slot = &mut self.slots[placement.shard][placement.ctx];
        let lane = slot.batch.push_covering(inputs, slot.seeded)?;
        debug_assert_eq!(lane, slot.tickets.len());
        let id = RequestId(self.next_request);
        self.next_request += 1;
        slot.tickets.push((id, tenant));
        Ok((id, slot.batch.is_full()))
    }

    /// The input name at `idx` of a slot's union (for refusal reporting).
    #[must_use]
    pub fn input_name(&self, shard: usize, ctx: usize, idx: usize) -> Option<&str> {
        self.slots[shard][ctx].batch.input_name(idx)
    }

    /// Context slots of `shard` that currently hold pending work, ascending.
    #[must_use]
    pub fn pending(&self, shard: usize) -> Vec<usize> {
        self.slots[shard]
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.batch.is_empty())
            .map(|(ctx, _)| ctx)
            .collect()
    }

    /// Total requests pending across every slot.
    #[must_use]
    pub fn pending_total(&self) -> usize {
        self.slots.iter().flatten().map(|s| s.tickets.len()).sum()
    }

    /// Borrows a slot's pending lane batch without removing it, or `None`
    /// when empty. Lets the executor evaluate first and [`take`](Self::take)
    /// only on success, so a failed pass leaves the requests queued instead
    /// of dropping them.
    #[must_use]
    pub fn slot(&self, shard: usize, ctx: usize) -> Option<&LaneBatch> {
        let slot = &self.slots[shard][ctx];
        (!slot.batch.is_empty()).then_some(&slot.batch)
    }

    /// A slot's per-lane `(request, tenant)` tickets, lane order — what a
    /// checkpoint records as its pending-request audit trail.
    #[must_use]
    pub fn tickets(&self, shard: usize, ctx: usize) -> &[(RequestId, TenantId)] {
        &self.slots[shard][ctx].tickets
    }

    /// Moves a [`TakenBatch`] into an **empty** slot wholesale, tickets
    /// and all — the live-migration path, which must preserve request ids
    /// so every in-flight request is still answered exactly once. The
    /// slot's canonical prefix is unchanged (the caller seeds it for the
    /// destination plane first).
    pub fn install(&mut self, shard: usize, ctx: usize, taken: TakenBatch) {
        let slot = &mut self.slots[shard][ctx];
        assert!(
            slot.batch.is_empty() && slot.tickets.is_empty(),
            "install target (shard {shard}, ctx {ctx}) already holds work"
        );
        slot.batch = taken.batch;
        slot.tickets = taken.tickets;
    }

    /// Re-queues a deserialized pending batch into an **empty** slot,
    /// issuing a *fresh* request id per occupied lane (returned in lane
    /// order). Restored checkpoints never reuse their recorded ids: the
    /// originals may have been answered or discarded since the checkpoint
    /// was taken, and a resurrected id would break queue conservation.
    pub fn restore(
        &mut self,
        shard: usize,
        ctx: usize,
        batch: LaneBatch,
        tenant: TenantId,
    ) -> Vec<RequestId> {
        let slot = &mut self.slots[shard][ctx];
        assert!(
            slot.batch.is_empty() && slot.tickets.is_empty(),
            "restore target (shard {shard}, ctx {ctx}) already holds work"
        );
        let lanes = batch.len();
        slot.batch = batch;
        let mut fresh = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let id = RequestId(self.next_request);
            self.next_request += 1;
            fresh.push(id);
        }
        self.slots[shard][ctx]
            .tickets
            .extend(fresh.iter().map(|&id| (id, tenant)));
        fresh
    }

    /// Fully resets a slot — union names, tickets and canonical prefix all
    /// drop. Called when a slot is *freed* (its tenant migrated away): a
    /// recycled empty batch still carries the old tenant's union names,
    /// and a future occupant seeding on top of them would compute a
    /// canonical prefix longer than its own union, refusing every submit.
    pub fn clear_slot(&mut self, shard: usize, ctx: usize) {
        self.slots[shard][ctx] = PendingSlot::default();
    }

    /// Removes and returns a slot's pending work, or `None` when empty.
    /// The slot's canonical-prefix length survives the take, but the fresh
    /// batch holds no names until [`recycle`](Self::recycle) or
    /// [`seed`](Self::seed) restores them.
    pub fn take(&mut self, shard: usize, ctx: usize) -> Option<TakenBatch> {
        let slot = &mut self.slots[shard][ctx];
        if slot.batch.is_empty() {
            return None;
        }
        Some(TakenBatch {
            batch: std::mem::take(&mut slot.batch),
            tickets: std::mem::take(&mut slot.tickets),
        })
    }

    /// Returns a consumed [`TakenBatch`]'s buffers to their slot for reuse
    /// (cleared, keeping capacity), if the slot is still empty — the
    /// allocation-recycling half of [`LaneBatch::clear`]. Union names the
    /// flushed requests appended beyond the canonical prefix (unbound
    /// extras) are dropped, so the name union stays bounded over the
    /// service's lifetime.
    pub fn recycle(&mut self, shard: usize, ctx: usize, taken: TakenBatch) {
        let slot = &mut self.slots[shard][ctx];
        if slot.batch.is_empty() && slot.tickets.is_empty() && slot.batch.name_count() == 0 {
            let TakenBatch {
                mut batch,
                mut tickets,
            } = taken;
            batch.clear();
            batch.truncate_names(slot.seeded);
            tickets.clear();
            slot.batch = batch;
            slot.tickets = tickets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_fabric::compiled::LANES;

    fn place(shard: usize, ctx: usize) -> Placement {
        Placement { shard, ctx }
    }

    fn tenant(reg: &mut crate::TenantRegistry, name: &str) -> TenantId {
        let p = reg.reserve().unwrap();
        reg.commit(name, p, 0)
    }

    #[test]
    fn fills_a_slot_lane_by_lane() {
        let mut reg = crate::TenantRegistry::new(1, 4).unwrap();
        let t = tenant(&mut reg, "a");
        let mut q = BatchQueue::new(1, 4);
        for i in 0..LANES {
            let (_, full) = q.enqueue(place(0, 0), t, &[("x", i % 2 == 0)]).unwrap();
            assert_eq!(full, i == LANES - 1, "lane {i}");
        }
        assert_eq!(q.pending_total(), LANES);
        assert_eq!(q.pending(0), vec![0]);
        // a full, unflushed slot refuses further enqueues instead of panicking
        assert_eq!(
            q.enqueue(place(0, 0), t, &[("x", true)]),
            Err(PushRefusal::Full)
        );
        let taken = q.take(0, 0).unwrap();
        assert_eq!(taken.tickets.len(), LANES);
        assert!(taken.batch.is_full());
        assert_eq!(q.pending_total(), 0);
        assert!(q.take(0, 0).is_none());
    }

    #[test]
    fn slots_are_independent() {
        let mut reg = crate::TenantRegistry::new(2, 2).unwrap();
        let a = tenant(&mut reg, "a"); // shard 0, ctx 0
        let b = tenant(&mut reg, "b"); // shard 1, ctx 0
        let mut q = BatchQueue::new(2, 2);
        q.enqueue(place(0, 0), a, &[("x", true)]).unwrap();
        q.enqueue(place(1, 0), b, &[("y", false)]).unwrap();
        q.enqueue(place(1, 0), b, &[("y", true)]).unwrap();
        assert_eq!(q.pending(0), vec![0]);
        assert_eq!(q.pending(1), vec![0]);
        assert_eq!(q.take(1, 0).unwrap().tickets.len(), 2);
        assert_eq!(q.pending_total(), 1);
    }

    #[test]
    fn seed_dedups_and_gates_enqueue() {
        let mut reg = crate::TenantRegistry::new(1, 4).unwrap();
        let t = tenant(&mut reg, "a");
        let mut q = BatchQueue::new(1, 4);
        // duplicate bound names collapse: coverage needs 2 names, not 3
        q.seed(0, 0, ["x", "x", "y"].into_iter());
        assert_eq!(
            q.enqueue(place(0, 0), t, &[("x", true)]),
            Err(PushRefusal::MissingInput(1))
        );
        assert_eq!(q.input_name(0, 0, 1), Some("y"));
        // any order, extras allowed
        q.enqueue(place(0, 0), t, &[("y", true), ("x", false), ("zz", true)])
            .unwrap();
        assert_eq!(q.pending_total(), 1);
    }

    #[test]
    fn recycle_trims_request_added_names() {
        let mut reg = crate::TenantRegistry::new(1, 4).unwrap();
        let t = tenant(&mut reg, "a");
        let mut q = BatchQueue::new(1, 4);
        q.seed(0, 0, ["a"].into_iter());
        q.enqueue(place(0, 0), t, &[("a", true), ("extra", true)])
            .unwrap();
        let taken = q.take(0, 0).unwrap();
        q.recycle(0, 0, taken);
        // the canonical prefix survives; the request's extra name is gone
        assert_eq!(q.input_name(0, 0, 0), Some("a"));
        assert_eq!(q.input_name(0, 0, 1), None);
        // coverage still enforced after recycling
        assert_eq!(
            q.enqueue(place(0, 0), t, &[("other", true)]),
            Err(PushRefusal::MissingInput(0))
        );
        q.enqueue(place(0, 0), t, &[("a", false)]).unwrap();
    }

    #[test]
    fn request_ids_are_unique_and_ordered() {
        let mut reg = crate::TenantRegistry::new(1, 2).unwrap();
        let t = tenant(&mut reg, "a");
        let mut q = BatchQueue::new(1, 2);
        let (r0, _) = q.enqueue(place(0, 0), t, &[]).unwrap();
        let (r1, _) = q.enqueue(place(0, 1), t, &[]).unwrap();
        assert!(r0 < r1);
    }
}
