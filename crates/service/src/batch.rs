//! Request coalescing: many tenants' single-vector requests become few
//! full-lane fabric passes.
//!
//! Since the per-shard-engine decomposition, a [`BatchQueue`] is **one
//! shard's** partition of the service's pending work: one
//! [`LaneBatch`] per context slot, owned by that shard's
//! [`crate::engine::ShardEngine`] so engines can flush concurrently
//! without sharing queue state. Request ids, however, are service-global
//! (responses are ordered and audited by id), so the queue never mints
//! them itself — the coordinator owns the single [`RequestIdSource`] and
//! lends it to whichever engine is enqueuing. The queue only *holds*
//! work; execution (and therefore flushing policy) belongs to the engine.

use crate::registry::TenantId;
use mcfpga_fabric::compiled::{LaneBatch, PushRefusal, LANES};
use mcfpga_fabric::FabricError;
use std::sync::Arc;

/// Opaque handle of one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// The raw id, as recorded in checkpoint audit trails. There is no
    /// inverse: ids enter the system only through the service's single
    /// [`RequestIdSource`], so a deserialized checkpoint can never mint an
    /// id that collides with (or resurrects) one this service issued.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The service-global request-id counter.
///
/// Exactly one exists per service, owned by the coordinator — engines
/// borrow it at enqueue/restore time, which is what keeps ids globally
/// unique and issued in submit order even though each engine owns its own
/// queue partition. Ids are only minted *after* a push succeeds, so a
/// refused request burns nothing.
#[derive(Debug, Clone, Default)]
pub struct RequestIdSource {
    next: u64,
}

impl RequestIdSource {
    /// A source starting at id 0.
    #[must_use]
    pub fn new() -> Self {
        RequestIdSource::default()
    }

    /// Issues the next id.
    pub fn mint(&mut self) -> RequestId {
        let id = RequestId(self.next);
        self.next += 1;
        id
    }
}

/// One completed request: the tenant's outputs for its input vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request this answers.
    pub request: RequestId,
    /// The tenant that submitted it.
    pub tenant: TenantId,
    /// Named output values, demuxed from the request's lane. Names are
    /// `Arc<str>` shared across the up-to-64 responses of one pass, so
    /// demuxing a full batch performs no per-response string allocation.
    pub outputs: Vec<(Arc<str>, bool)>,
}

/// Work pending on one context slot.
#[derive(Debug, Clone)]
struct PendingSlot {
    batch: LaneBatch,
    tickets: Vec<(RequestId, TenantId)>,
    /// Length of the canonical (seeded, deduplicated) input-name prefix —
    /// what [`BatchQueue::enqueue`] requires every request to cover.
    seeded: usize,
}

impl PendingSlot {
    fn with_width(width: usize) -> Result<Self, FabricError> {
        Ok(PendingSlot {
            batch: LaneBatch::with_width(width)?,
            tickets: Vec::new(),
            seeded: 0,
        })
    }
}

/// One shard's per-context accumulation of single-vector requests into
/// lane batches. Every slot batches up to [`width`](Self::width) lanes —
/// the queue remembers its width so freed and taken slots are rebuilt at
/// the same capacity.
#[derive(Debug, Clone)]
pub struct BatchQueue {
    slots: Vec<PendingSlot>,
    width: usize,
}

/// A slot's pending work, handed out by [`BatchQueue::take`].
#[derive(Debug, Clone)]
pub struct TakenBatch {
    /// The coalesced lane batch (non-empty).
    pub batch: LaneBatch,
    /// Per-lane `(request, tenant)` tickets, in lane order.
    pub tickets: Vec<(RequestId, TenantId)>,
}

impl BatchQueue {
    /// An empty queue over one shard's `contexts` slots at the legacy
    /// width of [`LANES`] (64) lanes per slot.
    #[must_use]
    pub fn new(contexts: usize) -> Self {
        Self::with_width(contexts, LANES).expect("the 64-lane legacy width is always valid")
    }

    /// An empty queue whose every slot batches up to `width` lanes
    /// (`1..=MAX_LANES`; see
    /// [`mcfpga_fabric::compiled::MAX_LANES`]).
    pub fn with_width(contexts: usize, width: usize) -> Result<Self, FabricError> {
        let mut slots = Vec::with_capacity(contexts);
        for _ in 0..contexts {
            slots.push(PendingSlot::with_width(width)?);
        }
        Ok(BatchQueue { slots, width })
    }

    /// Lanes per slot.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Seeds a slot's canonical input-name prefix (bound inputs, in bind
    /// order; duplicates collapse) so [`enqueue`](Self::enqueue) can verify
    /// coverage of every bound input within its single name-resolution
    /// scan. Call at admission and again after a [`take`](Self::take) that
    /// is not [`recycle`](Self::recycle)d (a fresh slot starts unseeded).
    pub fn seed<'a>(&mut self, ctx: usize, names: impl Iterator<Item = &'a str>) {
        let slot = &mut self.slots[ctx];
        let mut prefix = 0;
        for name in names {
            slot.batch.ensure_name(name);
            let idx = slot
                .batch
                .name_index(name)
                .expect("name was just ensured into the union");
            prefix = prefix.max(idx + 1);
        }
        slot.seeded = prefix;
    }

    /// Enqueues one single-vector request on its tenant's slot, verifying
    /// it drives the slot's whole canonical prefix (see
    /// [`seed`](Self::seed)). Mints the request id from the coordinator's
    /// `ids` source only on success, and returns it with whether the
    /// slot's [`width`](Self::width) lanes are now full (the caller should
    /// flush before the
    /// next enqueue). [`PushRefusal::Full`] means the slot already holds a
    /// full, unflushed batch (a previous flush failed and left its requests
    /// queued); [`PushRefusal::MissingInput`] leaves the slot unchanged.
    pub fn enqueue(
        &mut self,
        ctx: usize,
        tenant: TenantId,
        inputs: &[(&str, bool)],
        ids: &mut RequestIdSource,
    ) -> Result<(RequestId, bool), PushRefusal> {
        let slot = &mut self.slots[ctx];
        let lane = slot.batch.push_covering(inputs, slot.seeded)?;
        debug_assert_eq!(lane, slot.tickets.len());
        let id = ids.mint();
        slot.tickets.push((id, tenant));
        Ok((id, slot.batch.is_full()))
    }

    /// The input name at `idx` of a slot's union (for refusal reporting).
    #[must_use]
    pub fn input_name(&self, ctx: usize, idx: usize) -> Option<&str> {
        self.slots[ctx].batch.input_name(idx)
    }

    /// Context slots that currently hold pending work, ascending.
    #[must_use]
    pub fn pending(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.batch.is_empty())
            .map(|(ctx, _)| ctx)
            .collect()
    }

    /// Total requests pending across this shard's slots.
    #[must_use]
    pub fn pending_total(&self) -> usize {
        self.slots.iter().map(|s| s.tickets.len()).sum()
    }

    /// Borrows a slot's pending lane batch without removing it, or `None`
    /// when empty. Lets the executor evaluate first and [`take`](Self::take)
    /// only on success, so a failed pass leaves the requests queued instead
    /// of dropping them.
    #[must_use]
    pub fn slot(&self, ctx: usize) -> Option<&LaneBatch> {
        let slot = &self.slots[ctx];
        (!slot.batch.is_empty()).then_some(&slot.batch)
    }

    /// Borrows a slot's lane batch whether or not it holds work — the
    /// union names (canonical prefix included) are live even on an empty
    /// batch, which is what admission-time index resolution needs.
    #[must_use]
    pub fn batch(&self, ctx: usize) -> &LaneBatch {
        &self.slots[ctx].batch
    }

    /// A slot's per-lane `(request, tenant)` tickets, lane order — what a
    /// checkpoint records as its pending-request audit trail.
    #[must_use]
    pub fn tickets(&self, ctx: usize) -> &[(RequestId, TenantId)] {
        &self.slots[ctx].tickets
    }

    /// Moves a [`TakenBatch`] into an **empty** slot wholesale, tickets
    /// and all — the live-migration path, which must preserve request ids
    /// so every in-flight request is still answered exactly once. The
    /// slot's canonical prefix is unchanged (the caller seeds it for the
    /// destination plane first).
    pub fn install(&mut self, ctx: usize, taken: TakenBatch) {
        let slot = &mut self.slots[ctx];
        assert!(
            slot.batch.is_empty() && slot.tickets.is_empty(),
            "install target (ctx {ctx}) already holds work"
        );
        slot.batch = taken.batch;
        slot.tickets = taken.tickets;
    }

    /// Re-queues a deserialized pending batch into an **empty** slot,
    /// minting a *fresh* request id per occupied lane (returned in lane
    /// order). Restored checkpoints never reuse their recorded ids: the
    /// originals may have been answered or discarded since the checkpoint
    /// was taken, and a resurrected id would break queue conservation.
    pub fn restore(
        &mut self,
        ctx: usize,
        batch: LaneBatch,
        tenant: TenantId,
        ids: &mut RequestIdSource,
    ) -> Vec<RequestId> {
        let slot = &mut self.slots[ctx];
        assert!(
            slot.batch.is_empty() && slot.tickets.is_empty(),
            "restore target (ctx {ctx}) already holds work"
        );
        let lanes = batch.len();
        slot.batch = batch;
        let fresh: Vec<RequestId> = (0..lanes).map(|_| ids.mint()).collect();
        slot.tickets.extend(fresh.iter().map(|&id| (id, tenant)));
        fresh
    }

    /// Fully resets a slot — union names, tickets and canonical prefix all
    /// drop. Called when a slot is *freed* (its tenant migrated away): a
    /// recycled empty batch still carries the old tenant's union names,
    /// and a future occupant seeding on top of them would compute a
    /// canonical prefix longer than its own union, refusing every submit.
    pub fn clear_slot(&mut self, ctx: usize) {
        self.slots[ctx] =
            PendingSlot::with_width(self.width).expect("width validated at construction");
    }

    /// Removes and returns a slot's pending work, or `None` when empty.
    /// The slot's canonical-prefix length survives the take, but the fresh
    /// batch holds no names until [`recycle`](Self::recycle) or
    /// [`seed`](Self::seed) restores them.
    pub fn take(&mut self, ctx: usize) -> Option<TakenBatch> {
        let slot = &mut self.slots[ctx];
        if slot.batch.is_empty() {
            return None;
        }
        // replace with a fresh batch at the queue's own width — a
        // `mem::take` default would silently shrink the slot back to the
        // legacy 64 lanes on any take that is not recycled
        let fresh = LaneBatch::with_width(self.width).expect("width validated at construction");
        Some(TakenBatch {
            batch: std::mem::replace(&mut slot.batch, fresh),
            tickets: std::mem::take(&mut slot.tickets),
        })
    }

    /// Returns a consumed [`TakenBatch`]'s buffers to their slot for reuse
    /// (cleared, keeping capacity), if the slot is still empty — the
    /// allocation-recycling half of [`LaneBatch::clear`]. Union names the
    /// flushed requests appended beyond the canonical prefix (unbound
    /// extras) are dropped, so the name union stays bounded over the
    /// service's lifetime.
    pub fn recycle(&mut self, ctx: usize, taken: TakenBatch) {
        let slot = &mut self.slots[ctx];
        if slot.batch.is_empty() && slot.tickets.is_empty() && slot.batch.name_count() == 0 {
            let TakenBatch {
                mut batch,
                mut tickets,
            } = taken;
            batch.clear();
            batch.truncate_names(slot.seeded);
            tickets.clear();
            slot.batch = batch;
            slot.tickets = tickets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_fabric::compiled::LANES;

    fn tenant(reg: &mut crate::TenantRegistry, name: &str) -> TenantId {
        let p = reg.reserve().unwrap();
        reg.commit(name, p, 0)
    }

    #[test]
    fn fills_a_slot_lane_by_lane() {
        let mut reg = crate::TenantRegistry::new(1, 4).unwrap();
        let t = tenant(&mut reg, "a");
        let mut q = BatchQueue::new(4);
        let mut ids = RequestIdSource::new();
        for i in 0..LANES {
            let (_, full) = q.enqueue(0, t, &[("x", i % 2 == 0)], &mut ids).unwrap();
            assert_eq!(full, i == LANES - 1, "lane {i}");
        }
        assert_eq!(q.pending_total(), LANES);
        assert_eq!(q.pending(), vec![0]);
        // a full, unflushed slot refuses further enqueues instead of panicking
        assert_eq!(
            q.enqueue(0, t, &[("x", true)], &mut ids),
            Err(PushRefusal::Full)
        );
        let taken = q.take(0).unwrap();
        assert_eq!(taken.tickets.len(), LANES);
        assert!(taken.batch.is_full());
        assert_eq!(q.pending_total(), 0);
        assert!(q.take(0).is_none());
    }

    #[test]
    fn slots_are_independent() {
        let mut reg = crate::TenantRegistry::new(2, 2).unwrap();
        let a = tenant(&mut reg, "a"); // shard 0, ctx 0
        let b = tenant(&mut reg, "b"); // shard 1, ctx 0
        let mut ids = RequestIdSource::new();
        // one queue per shard now; a shared id source keeps ids global
        let mut q0 = BatchQueue::new(2);
        let mut q1 = BatchQueue::new(2);
        q0.enqueue(0, a, &[("x", true)], &mut ids).unwrap();
        q1.enqueue(0, b, &[("y", false)], &mut ids).unwrap();
        q1.enqueue(0, b, &[("y", true)], &mut ids).unwrap();
        assert_eq!(q0.pending(), vec![0]);
        assert_eq!(q1.pending(), vec![0]);
        assert_eq!(q1.take(0).unwrap().tickets.len(), 2);
        assert_eq!(q0.pending_total() + q1.pending_total(), 1);
    }

    #[test]
    fn seed_dedups_and_gates_enqueue() {
        let mut reg = crate::TenantRegistry::new(1, 4).unwrap();
        let t = tenant(&mut reg, "a");
        let mut q = BatchQueue::new(4);
        let mut ids = RequestIdSource::new();
        // duplicate bound names collapse: coverage needs 2 names, not 3
        q.seed(0, ["x", "x", "y"].into_iter());
        assert_eq!(
            q.enqueue(0, t, &[("x", true)], &mut ids),
            Err(PushRefusal::MissingInput(1))
        );
        assert_eq!(q.input_name(0, 1), Some("y"));
        // any order, extras allowed
        q.enqueue(0, t, &[("y", true), ("x", false), ("zz", true)], &mut ids)
            .unwrap();
        assert_eq!(q.pending_total(), 1);
    }

    #[test]
    fn recycle_trims_request_added_names() {
        let mut reg = crate::TenantRegistry::new(1, 4).unwrap();
        let t = tenant(&mut reg, "a");
        let mut q = BatchQueue::new(4);
        let mut ids = RequestIdSource::new();
        q.seed(0, ["a"].into_iter());
        q.enqueue(0, t, &[("a", true), ("extra", true)], &mut ids)
            .unwrap();
        let taken = q.take(0).unwrap();
        q.recycle(0, taken);
        // the canonical prefix survives; the request's extra name is gone
        assert_eq!(q.input_name(0, 0), Some("a"));
        assert_eq!(q.input_name(0, 1), None);
        // coverage still enforced after recycling
        assert_eq!(
            q.enqueue(0, t, &[("other", true)], &mut ids),
            Err(PushRefusal::MissingInput(0))
        );
        q.enqueue(0, t, &[("a", false)], &mut ids).unwrap();
    }

    #[test]
    fn wide_queue_fills_past_64_and_keeps_width_through_take_and_clear() {
        use mcfpga_fabric::compiled::MAX_LANES;
        let mut reg = crate::TenantRegistry::new(1, 2).unwrap();
        let t = tenant(&mut reg, "a");
        let mut q = BatchQueue::with_width(2, 128).unwrap();
        assert_eq!(q.width(), 128);
        let mut ids = RequestIdSource::new();
        for i in 0..128 {
            let (_, full) = q.enqueue(0, t, &[("x", i % 2 == 0)], &mut ids).unwrap();
            assert_eq!(full, i == 127, "lane {i}");
        }
        assert_eq!(
            q.enqueue(0, t, &[("x", true)], &mut ids),
            Err(PushRefusal::Full)
        );
        // take hands out the 128-lane batch and leaves a 128-wide slot
        let taken = q.take(0).unwrap();
        assert_eq!(taken.batch.len(), 128);
        for i in 0..65 {
            q.enqueue(0, t, &[("x", true)], &mut ids)
                .unwrap_or_else(|e| panic!("lane {i} after take refused: {e:?}"));
        }
        // clear_slot also rebuilds at the queue's width, not the default
        q.clear_slot(1);
        for _ in 0..65 {
            q.enqueue(1, t, &[("y", false)], &mut ids).unwrap();
        }
        assert_eq!(q.pending_total(), 65 + 65);
        // width bounds are validated
        assert!(BatchQueue::with_width(1, 0).is_err());
        assert!(BatchQueue::with_width(1, MAX_LANES + 1).is_err());
    }

    #[test]
    fn ids_stay_global_and_refusals_burn_nothing() {
        let mut reg = crate::TenantRegistry::new(1, 2).unwrap();
        let t = tenant(&mut reg, "a");
        let mut ids = RequestIdSource::new();
        let mut q = BatchQueue::new(2);
        let (r0, _) = q.enqueue(0, t, &[], &mut ids).unwrap();
        let (r1, _) = q.enqueue(1, t, &[], &mut ids).unwrap();
        assert!(r0 < r1);
        // a refused push must not consume an id
        q.seed(0, ["x"].into_iter());
        assert!(q.enqueue(0, t, &[("nope", true)], &mut ids).is_err());
        let (r2, _) = q.enqueue(1, t, &[], &mut ids).unwrap();
        assert_eq!(r2.value(), r1.value() + 1, "refusal burned an id");
    }
}
