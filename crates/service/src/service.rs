//! The sharded multi-tenant execution service — a thin coordinator over
//! per-shard engines.
//!
//! A [`ShardedService`] owns `N` independent [`ShardEngine`]s (same
//! geometry, same architecture) plus exactly the cross-shard state no
//! engine can own alone: the [`TenantRegistry`] (who lives where), the
//! digest-keyed [`PlaneCache`] (compiled planes are `Arc`-shared across
//! shards and re-admissions), the global [`RequestIdSource`], the
//! placement/sweep-order policies, and the merged response/fault streams.
//! Everything execution-local — compiled planes, CSS sequencer, queue
//! partition, tenant usage and stream registers — lives in the engine of
//! the shard hosting the tenant (see [`crate::engine`]).
//!
//! [`drain`](ShardedService::drain) plans every busy shard's sweep
//! sequentially (one owned `PlannedStep` per active context), evaluates
//! the steps on the [`ParallelExecutor`]'s persistent work-stealing pool
//! (shard-affine injector segments, so a skewed placement spreads instead
//! of serializing), and applies the results back **in merge-key order**
//! (shard, then sweep position, then lane) — so responses, faults and
//! billing are bit-for-bit identical to sequential execution at any
//! thread count; the thread count is a pure throughput knob
//! ([`set_threads`], or the `MCFPGA_THREADS` environment variable at
//! construction — see [`crate::executor`] for the env contract). The
//! lanes coalesced per pass are likewise a pure throughput knob
//! ([`set_lane_width`], up to 256).
//!
//! [`set_threads`]: ShardedService::set_threads
//! [`set_lane_width`]: ShardedService::set_lane_width

use crate::batch::{RequestId, RequestIdSource, Response};
use crate::engine::{eval_step, EvalOutcome, PlannedStep, ShardEngine, TenantState};
use crate::executor::{ExecutorConfig, ParallelExecutor};
use crate::placement::{best_slot, choose_energy_aware, netlist_fingerprint, PlacementPolicy};
use crate::registry::{Placement, PlaneCache, TenantId, TenantRegistry};
use crate::ServiceError;
use mcfpga_cost::attribution::{bill, render_billing, TenantBill, TenantUsage};
use mcfpga_css::optimize::{sweep_cost, CostMatrix, OptimizeMode};
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::{LaneBatch, MAX_LANES};
use mcfpga_fabric::route::implement_netlist_robust;
use mcfpga_fabric::{CompiledFabric, Fabric, FabricParams, LogicNetlist, RegisterFile, TileCoord};
use mcfpga_migrate::{MigrateError, PendingBatch, TenantCheckpoint};
use mcfpga_telemetry::{
    tenant_key, Counter, Gauge, Histogram, MetricClass, SpanEvent, SpanKind, Telemetry,
    ACTIVE_TENANTS_METRIC, QUEUE_DEPTH_METRIC,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Routing seed per context slot: admission is deterministic per slot, so
/// identical netlists admitted into same-index slots route identically and
/// share one cached compiled plane.
const SLOT_SEED: u64 = 0x5EED_0000;

/// Routing retry budget per admission.
const ROUTE_ATTEMPTS: usize = 16;

/// One slot's failed execution pass, recorded during a flush.
///
/// The slot's requests remain queued when this is raised; see
/// [`ShardedService::take_faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlotFault {
    /// The tenant whose batch failed.
    pub tenant: TenantId,
    /// Shard of the failing slot.
    pub shard: usize,
    /// Context of the failing slot.
    pub ctx: usize,
    /// What went wrong (typically an undriven bound input).
    pub error: ServiceError,
}

/// The service's telemetry handles. Deterministic class throughout
/// except the phase-timing histograms: every counter here is bumped on
/// the coordinating thread during the sequential plan/apply phases (or
/// in `submit`/`discard`, which are caller-sequenced), so the values are
/// bit-identical at any executor width and lane width.
#[derive(Debug, Clone)]
struct ServiceMetrics {
    /// Requests accepted by `submit`, sharded per shard.
    requests_submitted: Counter,
    /// Responses demuxed, sharded per shard.
    responses_total: Counter,
    /// Sweep steps applied, sharded per shard.
    steps_applied: Counter,
    /// Slot faults recorded.
    faults_total: Counter,
    /// Drain/flush pipeline runs.
    drains_total: Counter,
    /// Queued requests dropped by `discard_pending`.
    requests_discarded: Counter,
    /// Tenant moves (live migrations in, plus checkpoint restores).
    migrations: Counter,
    /// CSS broadcast toggles charged at plan time.
    css_toggles: Counter,
    /// Compiled ops in every applied pass's program (kernel or
    /// interpreter) — the denominator of the dirty-cone skip rate.
    fabric_ops_total: Counter,
    /// Ops skipped by dirty-cone incremental sweeps (clean input cone,
    /// cached chunks reused) — observationally equivalent to running.
    fabric_ops_skipped: Counter,
    /// Applied passes evaluated by the straight-line kernel (vs the
    /// reference interpreter).
    fabric_kernel_evals: Counter,
    /// Requests parked in lane batches right now.
    queue_depth: Gauge,
    /// Admitted, non-retired tenants.
    active_tenants: Gauge,
    /// Lanes served per applied step (log2 buckets).
    batch_lanes: Histogram,
    /// Wall-clock microseconds of the sequential plan phase.
    plan_us: Histogram,
    /// Wall-clock microseconds of the (possibly pooled) eval phase.
    eval_us: Histogram,
    /// Wall-clock microseconds of the sequential apply phase.
    apply_us: Histogram,
}

impl ServiceMetrics {
    fn register(telemetry: &Telemetry, shards: usize) -> Self {
        let r = telemetry.registry();
        let det = MetricClass::Deterministic;
        let wall = MetricClass::WallClock;
        ServiceMetrics {
            requests_submitted: r.counter_sharded("service_requests_submitted", det, shards),
            responses_total: r.counter_sharded("service_responses_total", det, shards),
            steps_applied: r.counter_sharded("service_steps_applied", det, shards),
            faults_total: r.counter("service_faults_total", det),
            drains_total: r.counter("service_drains_total", det),
            requests_discarded: r.counter("service_requests_discarded", det),
            migrations: r.counter("service_migrations", det),
            css_toggles: r.counter("service_css_toggles", det),
            fabric_ops_total: r.counter("fabric_ops_total", det),
            fabric_ops_skipped: r.counter("fabric_ops_skipped", det),
            fabric_kernel_evals: r.counter("fabric_kernel_evals", det),
            queue_depth: r.gauge(QUEUE_DEPTH_METRIC, det),
            active_tenants: r.gauge(ACTIVE_TENANTS_METRIC, det),
            batch_lanes: r.histogram("service_batch_lanes", det),
            plan_us: r.histogram("service_plan_us", wall),
            eval_us: r.histogram("service_eval_us", wall),
            apply_us: r.histogram("service_apply_us", wall),
        }
    }
}

/// A multi-tenant batched execution runtime over `N` fabric shards.
///
/// See the [crate docs](crate) for the end-to-end picture and a runnable
/// example.
#[derive(Debug)]
pub struct ShardedService {
    params: FabricParams,
    tech: TechParams,
    registry: TenantRegistry,
    cache: PlaneCache,
    engines: Vec<ShardEngine>,
    executor: ParallelExecutor,
    /// The single service-global request-id counter (engines borrow it).
    ids: RequestIdSource,
    /// Merged responses, shard-then-lane order per flush.
    ready: Vec<Response>,
    /// Merged fault records, shard order per flush, oldest first.
    faults: Vec<SlotFault>,
    /// Sweep-ordering policy (see [`mcfpga_css::optimize`]).
    optimize: OptimizeMode,
    /// Admission slot-assignment policy.
    placement: PlacementPolicy,
    /// The arch's pairwise transition-toggle matrix — shared by the sweep
    /// optimizer, the baseline accounting and energy-aware placement.
    matrix: CostMatrix,
    /// Lanes coalesced per slot per pass (every engine queue is built at
    /// this width). Default [`MAX_LANES`].
    lane_width: usize,
    /// Netlist fingerprint → context index of its first admission: the
    /// plane-cache affinity hint energy-aware placement tie-breaks on.
    affinity: HashMap<u64, usize>,
    /// The service's observability surface: metric registry, span ring
    /// and virtual-clock cell (fed by whatever driver owns the clock).
    telemetry: Telemetry,
    /// Handles into `telemetry`'s registry — see [`ServiceMetrics`].
    metrics: ServiceMetrics,
}

/// Cloning forks the execution state but **not** the telemetry: the
/// clone gets a fresh registry/span ring (with gauges resynced and the
/// `executor_*` metrics re-registered there), so two services never
/// double-record into one registry. Matches the executor's own clone
/// isolation.
impl Clone for ShardedService {
    fn clone(&self) -> Self {
        let telemetry = Telemetry::with_trace_capacity(self.telemetry.trace_buffer().capacity());
        let metrics = ServiceMetrics::register(&telemetry, self.engines.len());
        let executor = self.executor.clone_on(telemetry.registry());
        let svc = ShardedService {
            params: self.params,
            tech: self.tech.clone(),
            registry: self.registry.clone(),
            cache: self.cache.clone(),
            engines: self.engines.clone(),
            executor,
            ids: self.ids.clone(),
            ready: self.ready.clone(),
            faults: self.faults.clone(),
            optimize: self.optimize,
            placement: self.placement,
            matrix: self.matrix.clone(),
            lane_width: self.lane_width,
            affinity: self.affinity.clone(),
            telemetry,
            metrics,
        };
        svc.sync_gauges();
        svc
    }
}

impl ShardedService {
    /// A service of `shards` fabrics, each shaped by `params`, with energy
    /// accounted under `tech`. Capacity is `shards × params.contexts`
    /// tenants. Sweeps are toggle-optimized ([`OptimizeMode::Optimized`] —
    /// output-equivalent to the naive order, never more energy) and
    /// admission is round-robin; see
    /// [`with_policies`](Self::with_policies) for the full policy surface.
    pub fn new(
        shards: usize,
        params: FabricParams,
        tech: TechParams,
    ) -> Result<Self, ServiceError> {
        Self::with_policies(
            shards,
            params,
            tech,
            OptimizeMode::Optimized,
            PlacementPolicy::RoundRobin,
        )
    }

    /// A service with explicit sweep-ordering and placement policies. The
    /// executor width comes from `MCFPGA_THREADS` (falling back to the
    /// machine's available parallelism); it never changes results, only
    /// wall-clock — see [`set_threads`](Self::set_threads).
    pub fn with_policies(
        shards: usize,
        params: FabricParams,
        tech: TechParams,
        optimize: OptimizeMode,
        placement: PlacementPolicy,
    ) -> Result<Self, ServiceError> {
        let registry = TenantRegistry::new(shards, params.contexts)?;
        let mut engines = Vec::with_capacity(shards);
        for shard in 0..shards {
            engines.push(ShardEngine::new(shard, params, MAX_LANES)?);
        }
        let matrix = engines[0].sequencer().cost_matrix();
        let telemetry = Telemetry::new();
        let metrics = ServiceMetrics::register(&telemetry, shards);
        let executor = ParallelExecutor::from_env_on(telemetry.registry());
        Ok(ShardedService {
            params,
            tech,
            registry,
            cache: PlaneCache::new(),
            engines,
            executor,
            ids: RequestIdSource::new(),
            ready: Vec::new(),
            faults: Vec::new(),
            optimize,
            placement,
            matrix,
            lane_width: MAX_LANES,
            affinity: HashMap::new(),
            telemetry,
            metrics,
        })
    }

    /// The active sweep-ordering policy.
    #[must_use]
    pub fn optimize_mode(&self) -> OptimizeMode {
        self.optimize
    }

    /// Switches the sweep-ordering policy. Takes effect on the next flush;
    /// already-queued requests are unaffected (any order is
    /// output-equivalent).
    pub fn set_optimize_mode(&mut self, mode: OptimizeMode) {
        self.optimize = mode;
    }

    /// The active placement policy.
    #[must_use]
    pub fn placement_policy(&self) -> PlacementPolicy {
        self.placement
    }

    /// Switches the placement policy for *future* admissions; existing
    /// tenants keep their slots.
    pub fn set_placement_policy(&mut self, policy: PlacementPolicy) {
        self.placement = policy;
    }

    /// Worker threads the next [`drain`](Self::drain) fans out across.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Sets the drain fan-out width. **Never changes output**: responses,
    /// faults and billing are applied in merge-key order whatever the
    /// width — `set_threads(1)` *is* the sequential execution, not an
    /// approximation of it. The previous executor's worker pool (if it
    /// had spawned) is joined here; the new pool spawns lazily on the
    /// next parallel drain.
    pub fn set_threads(&mut self, threads: usize) {
        // re-registers the `executor_*` metrics on this service's
        // registry, zeroing them — a new pool starts a new accounting era
        self.executor = ParallelExecutor::new_on(threads, self.telemetry.registry());
    }

    /// The executor's resolved width and its provenance (env variable,
    /// machine parallelism, or explicit) — including the rejected raw
    /// value when `MCFPGA_THREADS` was set but invalid.
    #[must_use]
    pub fn executor_config(&self) -> &ExecutorConfig {
        self.executor.config()
    }

    /// The service's telemetry surface: its metric registry (service
    /// counters/gauges/histograms plus the executor's `executor_*`
    /// accounting), its span ring buffer, and the virtual-clock cell the
    /// owning driver stamps spans with. Read-only handles are cheap to
    /// clone out of it.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Reconstructs one request's recorded lifecycle — queued → planned
    /// → evaluated → applied → demuxed (plus migration hops) — in
    /// canonical timeline order. Empty when the request's spans have
    /// aged out of the ring buffer (see the `trace_dropped` metric).
    #[must_use]
    pub fn trace(&self, request: RequestId) -> Vec<SpanEvent> {
        self.telemetry.trace(request.value())
    }

    /// Lanes coalesced per slot per pass (the auto-flush threshold).
    #[must_use]
    pub fn lane_width(&self) -> usize {
        self.lane_width
    }

    /// Sets how many requests one evaluation pass serves per slot
    /// (`1..=MAX_LANES`). **Never changes output** — a narrower width
    /// just flushes more often — but it may only change while no request
    /// is pending: every engine's queue partition is rebuilt at the new
    /// width (and every programmed slot re-seeded), which would silently
    /// drop queued lanes. Drain or discard first.
    pub fn set_lane_width(&mut self, width: usize) -> Result<(), ServiceError> {
        if width == 0 || width > MAX_LANES {
            return Err(ServiceError::BadConfig(format!(
                "lane width {width} outside 1..={MAX_LANES}"
            )));
        }
        if self.pending_requests() > 0 {
            return Err(ServiceError::BadConfig(
                "cannot change lane width while requests are pending; drain or discard first"
                    .into(),
            ));
        }
        for engine in &mut self.engines {
            engine.set_lane_width(width)?;
        }
        self.lane_width = width;
        Ok(())
    }

    /// Admits a tenant: assigns a `(shard, context)` slot under the active
    /// [`PlacementPolicy`], routes `netlist` into it, then reuses a cached
    /// compiled plane when the routed configuration's digest has been seen
    /// before (re-admitting an identical bitstream never recompiles).
    pub fn admit(&mut self, name: &str, netlist: &LogicNetlist) -> Result<TenantId, ServiceError> {
        let fingerprint = netlist_fingerprint(netlist);
        let placement = match self.placement {
            PlacementPolicy::RoundRobin => self.registry.reserve()?,
            PlacementPolicy::EnergyAware => choose_energy_aware(
                &self.registry,
                &self.matrix,
                self.affinity.get(&fingerprint).copied(),
            )?,
        };
        self.admit_into(name, netlist, placement)
    }

    /// [`admit`](Self::admit) into an **exact** free slot, bypassing the
    /// placement policy — the cluster router's admission primitive (it
    /// scores slots across *nodes*, something no single service can do,
    /// then pins the winner here). Routing, compilation, plane caching
    /// and registry commit are identical to a policy admission, so a
    /// pinned admission is bit-for-bit equivalent to a policy admission
    /// that happened to choose the same slot.
    pub fn admit_placed(
        &mut self,
        name: &str,
        netlist: &LogicNetlist,
        placement: Placement,
    ) -> Result<TenantId, ServiceError> {
        self.check_shard(placement.shard)?;
        if placement.ctx >= self.params.contexts {
            return Err(ServiceError::BadConfig(format!(
                "context {} outside 0..{}",
                placement.ctx, self.params.contexts
            )));
        }
        if self
            .registry
            .occupant(placement.shard, placement.ctx)
            .is_some()
        {
            return Err(ServiceError::BadConfig(format!(
                "slot (shard {}, ctx {}) is occupied",
                placement.shard, placement.ctx
            )));
        }
        self.admit_into(name, netlist, placement)
    }

    fn admit_into(
        &mut self,
        name: &str,
        netlist: &LogicNetlist,
        placement: Placement,
    ) -> Result<TenantId, ServiceError> {
        let fingerprint = netlist_fingerprint(netlist);
        let engine = &mut self.engines[placement.shard];
        let routed = implement_netlist_robust(
            engine.fabric_mut(),
            netlist,
            placement.ctx,
            SLOT_SEED + placement.ctx as u64,
            ROUTE_ATTEMPTS,
        );
        if let Err(e) = routed {
            // leave the slot exactly as reserved: free and unconfigured
            engine.fabric_mut().clear_context(placement.ctx)?;
            return Err(e.into());
        }
        let digest = engine.fabric().context_digest(placement.ctx)?;
        let plane = self.cache.get_or_compile(digest, || {
            CompiledFabric::compile_context(engine.fabric(), placement.ctx)
        })?;
        engine.install_plane(placement.ctx, plane);
        let id = self.registry.commit(name, placement, digest);
        self.affinity.entry(fingerprint).or_insert(placement.ctx);
        let engine = &mut self.engines[placement.shard];
        engine.add_tenant(id);
        engine.seed_slot(placement.ctx)?;
        self.sync_gauges();
        Ok(id)
    }

    /// Submits one single-vector request for `tenant`. The request parks
    /// in its slot's lane batch; when the last of the slot's
    /// [`lane_width`](Self::lane_width) lanes fills, the slot executes
    /// immediately (on the caller's thread — a lane-full flush concerns
    /// one slot, so there is nothing to fan out) and its responses become
    /// available on the next [`drain`](Self::drain).
    ///
    /// Every input the tenant's plane binds must be driven —
    /// [`ServiceError::MissingInput`] otherwise. The check happens at
    /// submit, per request, because a batched pass evaluates the union of
    /// its lanes' input names: without it, a request omitting an input a
    /// sibling request supplies would silently compute with that input
    /// as 0. Extra names the plane does not bind are ignored. (The check
    /// rides the enqueue's own name-resolution scan — see
    /// [`LaneBatch::push_covering`](mcfpga_fabric::compiled::LaneBatch::push_covering)
    /// — so it costs no extra string comparisons.)
    ///
    /// If the lane-full auto-flush's pass fails, the request (and the rest
    /// of its batch) stays queued and a [`SlotFault`] is recorded; recover
    /// with a corrected retry of [`drain`](Self::drain) or
    /// [`discard_pending`](Self::discard_pending).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        inputs: &[(&str, bool)],
    ) -> Result<RequestId, ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let (id, full) =
            self.engines[placement.shard].submit(placement.ctx, tenant, inputs, &mut self.ids)?;
        self.metrics.requests_submitted.add_to(placement.shard, 1);
        let queued = self.engines[placement.shard].tickets(placement.ctx).len();
        self.telemetry
            .span(SpanKind::Queued, id.value(), queued as i64);
        if full {
            self.run_engine(placement.shard, &[(placement.ctx, tenant)])?;
        }
        self.sync_gauges();
        Ok(id)
    }

    /// Discards `tenant`'s queued, not-yet-executed requests, returning how
    /// many were dropped. The escape hatch for a poisoned batch (one whose
    /// flush keeps faulting); discarded requests never receive responses
    /// and are removed from the tenant's usage counters, so
    /// `vectors_per_pass` keeps reflecting requests actually served.
    pub fn discard_pending(&mut self, tenant: TenantId) -> Result<usize, ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let dropped = self.engines[placement.shard].discard_pending(placement.ctx, tenant)?;
        self.metrics.requests_discarded.add(dropped as u64);
        self.sync_gauges();
        Ok(dropped)
    }

    /// Flushes every slot with pending work and returns all completed
    /// responses, including those from earlier lane-full auto-flushes.
    /// Each shard sweeps only its *active* contexts
    /// ([`mcfpga_css::Schedule::active_sweep`]), so idle tenants cost no
    /// broadcast toggles. Three phases:
    ///
    /// 1. **Plan** (sequential): every busy shard's CSS schedule is
    ///    stepped through and each active slot becomes one owned
    ///    `PlannedStep` tagged with its `(shard, sweep-position)` merge
    ///    key — switch toggles are charged here.
    /// 2. **Eval** (parallel): the steps — per-*context* tasks, not
    ///    per-shard chunks — go to the executor's persistent
    ///    work-stealing pool, keyed by shard affinity; a shard holding
    ///    every tenant still spreads across all workers. Evaluation is
    ///    pure, so execution order is free.
    /// 3. **Apply** (sequential, merge-key order): results are placed
    ///    back by task index, so responses, faults and billing land in
    ///    shard-then-sweep-position-then-lane order — bit-for-bit
    ///    identical at any thread count and any lane width.
    ///
    /// A slot whose pass fails (e.g. a request omitted one of its tenant's
    /// bound inputs) never blocks the others: its requests stay queued, a
    /// [`SlotFault`] is recorded (see [`take_faults`](Self::take_faults)),
    /// and the sweep continues — one tenant's malformed request cannot
    /// withhold other tenants' responses.
    pub fn drain(&mut self) -> Result<Vec<Response>, ServiceError> {
        let work: Result<Vec<Vec<(usize, TenantId)>>, ServiceError> = (0..self.engines.len())
            .map(|s| self.active_slots(s))
            .collect();
        self.drain_slots(work?)
    }

    /// Flushes **only** the listed tenants' slots (those with pending
    /// work), leaving every other tenant's partial batch accumulating —
    /// the partial-width flush entry point the QoS front-end
    /// ([`crate::frontend`]) uses to serve a latency-sensitive tenant
    /// before its deadline without forcing throughput tenants out of
    /// their lane-filling wait. Same three-phase plan → pooled eval →
    /// merge-key-ordered apply pipeline as [`drain`](Self::drain) (a
    /// multi-slot flush still fans out across the executor's worker
    /// pool), so the returned responses — including any buffered from
    /// earlier lane-full auto-flushes — are bit-for-bit identical at any
    /// thread count. Duplicate tenants in `tenants` flush once; tenants
    /// with nothing queued cost nothing.
    pub fn flush_tenants(&mut self, tenants: &[TenantId]) -> Result<Vec<Response>, ServiceError> {
        let mut work: Vec<Vec<(usize, TenantId)>> = vec![Vec::new(); self.engines.len()];
        for &tenant in tenants {
            let placement = self.registry.tenant(tenant)?.placement;
            if self.engines[placement.shard]
                .pending()
                .contains(&placement.ctx)
                && !work[placement.shard]
                    .iter()
                    .any(|&(ctx, _)| ctx == placement.ctx)
            {
                work[placement.shard].push((placement.ctx, tenant));
            }
        }
        for shard in &mut work {
            // plan in ascending context order, exactly as drain() sees them
            shard.sort_by_key(|&(ctx, _)| ctx);
        }
        self.drain_slots(work)
    }

    /// The shared body of [`drain`](Self::drain) and
    /// [`flush_tenants`](Self::flush_tenants): plans each shard's sweep
    /// over its `work` slots, evaluates on the pool, applies in merge-key
    /// order, and hands back every buffered response.
    fn drain_slots(
        &mut self,
        work: Vec<Vec<(usize, TenantId)>>,
    ) -> Result<Vec<Response>, ServiceError> {
        let mut steps = Vec::new();
        let mut errors: Vec<Option<ServiceError>> = vec![None; self.engines.len()];
        let toggles_before = self.total_css_toggles();
        let plan_start = Instant::now();
        for (shard, active) in work.iter().enumerate() {
            if !active.is_empty() {
                errors[shard] =
                    self.engines[shard].plan_sweep(active, self.optimize, &self.matrix, &mut steps);
            }
        }
        self.metrics
            .plan_us
            .observe(plan_start.elapsed().as_micros() as u64);
        self.metrics
            .css_toggles
            .add(self.total_css_toggles().saturating_sub(toggles_before));
        self.eval_and_apply(steps, &mut errors);
        self.metrics.drains_total.inc();
        self.sync_gauges();
        // a structural engine failure never drops executed work: every
        // planned step was still evaluated and applied above (consuming
        // its requests), and the first error in shard order is returned —
        // with the responses left buffered for the caller's retry
        if let Some(e) = errors.into_iter().flatten().next() {
            return Err(e);
        }
        Ok(std::mem::take(&mut self.ready))
    }

    /// Evaluates `steps` — on the persistent pool when both the executor
    /// width and the step count allow parallelism, inline otherwise (the
    /// two paths run the same `eval_step` on the same data) — then
    /// applies every result in task order, which **is** merge-key order:
    /// steps were planned shard by shard, each shard in sweep order.
    /// Apply errors are recorded per shard, never overwriting an earlier
    /// (plan-phase) error.
    fn eval_and_apply(&mut self, steps: Vec<PlannedStep>, errors: &mut [Option<ServiceError>]) {
        if steps.is_empty() {
            return;
        }
        type Evaluated = (PlannedStep, Result<EvalOutcome, ServiceError>);
        let eval_start = Instant::now();
        let results: Vec<Evaluated> = if self.executor.threads() > 1 && steps.len() > 1 {
            let tasks: Vec<(usize, PlannedStep)> =
                steps.into_iter().map(|s| (s.shard, s)).collect();
            self.executor.run_owned(
                tasks,
                Arc::new(|mut step: PlannedStep| {
                    let outs = eval_step(&mut step);
                    (step, outs)
                }),
            )
        } else {
            steps
                .into_iter()
                .map(|mut step| {
                    let outs = eval_step(&mut step);
                    (step, outs)
                })
                .collect()
        };
        self.metrics
            .eval_us
            .observe(eval_start.elapsed().as_micros() as u64);
        let apply_start = Instant::now();
        let mut prev_key = None;
        for (mut step, outs) in results {
            let key = (step.shard, step.pos);
            debug_assert!(
                prev_key < Some(key),
                "apply order violated the (shard, sweep-position) merge key: \
                 {prev_key:?} then {key:?}"
            );
            prev_key = Some(key);
            self.apply_step_traced(&mut step, outs, errors);
        }
        self.metrics
            .apply_us
            .observe(apply_start.elapsed().as_micros() as u64);
    }

    /// Applies one evaluated step, recording its telemetry: per-shard
    /// step/response counters, the served-lanes histogram, one
    /// planned→evaluated→applied→demuxed span quartet per demuxed
    /// response, and fault counters/spans for a failed apply. Runs on
    /// the coordinating thread in merge-key order, so every recording
    /// here is deterministic-class. Apply errors land in `errors` per
    /// shard, never overwriting an earlier (plan-phase) error.
    fn apply_step_traced(
        &mut self,
        step: &mut PlannedStep,
        outcome: Result<EvalOutcome, ServiceError>,
        errors: &mut [Option<ServiceError>],
    ) {
        let shard = step.shard;
        let ready_before = self.ready.len();
        let faults_before = self.faults.len();
        let result =
            self.engines[shard].apply_step(step, outcome, &mut self.ready, &mut self.faults);
        self.metrics.steps_applied.add_to(shard, 1);
        let result = match result {
            Ok(Some(stats)) => {
                self.metrics.fabric_ops_total.add(stats.ops_total);
                self.metrics.fabric_ops_skipped.add(stats.ops_skipped);
                if stats.kernel {
                    self.metrics.fabric_kernel_evals.inc();
                }
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(e) => Err(e),
        };
        let served = self.ready.len() - ready_before;
        if served > 0 {
            self.metrics.responses_total.add_to(shard, served as u64);
            self.metrics.batch_lanes.observe(served as u64);
        }
        if self.telemetry.trace_buffer().is_enabled() {
            for resp in &self.ready[ready_before..] {
                let key = resp.request.value();
                // the whole drain shares one virtual-clock stamp; the span
                // ranks keep the phases ordered within the cycle
                self.telemetry.span(SpanKind::Planned, key, shard as i64);
                self.telemetry
                    .span(SpanKind::Evaluated, key, step.ctx as i64);
                self.telemetry.span(SpanKind::Applied, key, step.pos as i64);
                self.telemetry
                    .span(SpanKind::Demuxed, key, resp.outputs.len() as i64);
            }
        }
        let faulted = self.faults.len() - faults_before;
        if faulted > 0 {
            self.metrics.faults_total.add(faulted as u64);
            for fault in &self.faults[faults_before..] {
                self.telemetry.span(
                    SpanKind::Fault,
                    tenant_key(fault.tenant.index()),
                    fault.shard as i64,
                );
            }
        }
        if let Err(e) = result {
            if errors[shard].is_none() {
                errors[shard] = Some(e);
            }
        }
    }

    /// The `(context, occupant)` slots of `shard` holding pending work —
    /// the coordinator resolves occupancy *before* the fan-out so engines
    /// never touch the registry concurrently.
    fn active_slots(&self, shard: usize) -> Result<Vec<(usize, TenantId)>, ServiceError> {
        self.engines[shard]
            .pending()
            .into_iter()
            .map(|ctx| {
                self.registry
                    .occupant(shard, ctx)
                    .map(|t| (ctx, t))
                    .ok_or(ServiceError::SlotNotProgrammed { shard, ctx })
            })
            .collect()
    }

    /// Runs one shard's sweep inline (the lane-full auto-flush path):
    /// same plan → eval → apply pipeline as [`drain`](Self::drain), minus
    /// the pool — a single slot just flushed, so fan-out buys nothing.
    fn run_engine(
        &mut self,
        shard: usize,
        active: &[(usize, TenantId)],
    ) -> Result<(), ServiceError> {
        let mut steps = Vec::new();
        let mut errors: Vec<Option<ServiceError>> = vec![None; self.engines.len()];
        let toggles_before = self.total_css_toggles();
        errors[shard] =
            self.engines[shard].plan_sweep(active, self.optimize, &self.matrix, &mut steps);
        self.metrics
            .css_toggles
            .add(self.total_css_toggles().saturating_sub(toggles_before));
        for mut step in steps {
            let outs = eval_step(&mut step);
            self.apply_step_traced(&mut step, outs, &mut errors);
        }
        errors.into_iter().flatten().next().map_or(Ok(()), Err)
    }

    /// Resyncs the point-in-time gauges with the structures they mirror.
    /// Called wherever queue depth or tenancy changes; cheap (sums one
    /// counter per engine).
    fn sync_gauges(&self) {
        self.metrics.queue_depth.set(self.pending_requests() as i64);
        self.metrics.active_tenants.set(self.registry.len() as i64);
    }

    /// Every live tenant's accumulated CSS broadcast toggles — the
    /// before/after delta around a plan phase is the sweep's toggle
    /// charge, mirrored into the `service_css_toggles` counter.
    fn total_css_toggles(&self) -> u64 {
        self.registry
            .iter()
            .map(|(id, rec)| {
                self.engines[rec.placement.shard]
                    .tenant_state(id)
                    .map(|s| s.usage.css_toggles as u64)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Removes and returns the per-slot execution faults recorded since the
    /// last call, oldest first. Each faulted slot's requests are still
    /// queued: fix and [`drain`](Self::drain) again, or
    /// [`discard_pending`](Self::discard_pending) the poisoned batch.
    pub fn take_faults(&mut self) -> Vec<SlotFault> {
        std::mem::take(&mut self.faults)
    }

    /// Chaos-testing hook: swaps `tenant`'s compiled plane for one whose
    /// bound output can never resolve, so the slot's next pass fails and
    /// surfaces as a [`SlotFault`] (requests stay queued, exactly as for a
    /// real plane corruption). The tenant's routed fabric configuration is
    /// untouched — [`repair_plane`](Self::repair_plane) restores service.
    pub fn inject_plane_fault(&mut self, tenant: TenantId) -> Result<(), ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let mut broken = Fabric::new(self.params)?;
        broken.bind_output(TileCoord { x: 0, y: 0 }, 0, placement.ctx, "poisoned")?;
        self.engines[placement.shard].install_plane(
            placement.ctx,
            Arc::new(CompiledFabric::compile_context(&broken, placement.ctx)?),
        );
        Ok(())
    }

    /// Restores `tenant`'s true compiled plane after
    /// [`inject_plane_fault`](Self::inject_plane_fault) (or any plane
    /// corruption), by digest: the admission-time digest recorded in the
    /// registry finds the cached plane — rebased to the tenant's current
    /// slot if a migration moved it off its admission context — and a
    /// cache miss recompiles from the tenant's still-routed fabric
    /// configuration. A *migrated* tenant has no routed configuration to
    /// recompile from (only the plane travelled), so for it a cache miss
    /// is [`MigrateError::PlaneUnavailable`] rather than a silent compile
    /// of an empty context. Queued requests survive and serve normally on
    /// the next flush.
    pub fn repair_plane(&mut self, tenant: TenantId) -> Result<(), ServiceError> {
        let record = self.registry.tenant(tenant)?;
        let placement = record.placement;
        let digest = record.digest;
        let plane = if record.resident {
            let engine = &self.engines[placement.shard];
            self.cache.get_or_compile(digest, || {
                CompiledFabric::compile_context(engine.fabric(), placement.ctx)
            })?
        } else {
            self.cache
                .get(digest)
                .ok_or(MigrateError::PlaneUnavailable { digest })?
        };
        let plane = self.plane_for_slot(plane, placement.ctx)?;
        let engine = &mut self.engines[placement.shard];
        engine.install_plane(placement.ctx, plane);
        // re-establish the canonical submit-coverage prefix from the true
        // plane: a migration or discard that happened *while* the slot held
        // a corrupted plane seeded from that plane's (empty) binds, and
        // without this the repaired tenant would accept under-driven
        // requests and silently evaluate the omissions as 0
        engine.seed_slot(placement.ctx)?;
        Ok(())
    }

    /// `plane`, usable from context `ctx` of *this* service's fabrics:
    /// as-is when it was compiled there, rebased otherwise (compiled
    /// planes are context-independent; see
    /// [`CompiledFabric::rebase_context`]). A plane compiled on a smaller
    /// compatible geometry — a checkpoint restored from a differently
    /// shaped node — is pad-and-remapped onto this service's geometry via
    /// [`CompiledFabric::rebase_onto`].
    fn plane_for_slot(
        &self,
        plane: Arc<CompiledFabric>,
        ctx: usize,
    ) -> Result<Arc<CompiledFabric>, ServiceError> {
        if plane.params() != &self.params {
            Ok(Arc::new(plane.rebase_onto(self.params, ctx)?))
        } else if plane.compiled_context() == Some(ctx) {
            Ok(plane)
        } else {
            Ok(Arc::new(plane.rebase_context(ctx)?))
        }
    }

    /// Can a checkpoint taken on a `ckpt`-shaped fabric be restored onto
    /// this service's fabrics? Tiles must have identical resource shapes
    /// (same switch architecture, LUT arity, channel width and IO counts)
    /// and the host grid must be at least as large in both dimensions —
    /// the pad-and-remap embedding of [`CompiledFabric::rebase_onto`].
    /// Context counts may differ freely: a restored plane occupies
    /// whatever slot the host has free.
    fn geometry_admits(&self, ckpt: &FabricParams) -> bool {
        let host = &self.params;
        host.arch == ckpt.arch
            && host.lut_k == ckpt.lut_k
            && host.channel_width == ckpt.channel_width
            && host.io_in == ckpt.io_in
            && host.io_out == ckpt.io_out
            && host.width >= ckpt.width
            && host.height >= ckpt.height
    }

    fn check_shard(&self, shard: usize) -> Result<(), ServiceError> {
        if shard >= self.engines.len() {
            return Err(ServiceError::NoSuchShard {
                shard,
                shards: self.engines.len(),
            });
        }
        Ok(())
    }

    /// Modeled broadcast toggles the destination shard's sweeps gain when
    /// `ctx` joins its occupied set — the migration's realignment charge.
    /// `vacating` is the slot the mover is leaving: for an intra-shard
    /// move it sits on the destination shard but will not be occupied
    /// after the move, so it is excluded from both sweeps.
    fn join_cost(
        &self,
        dst_shard: usize,
        ctx: usize,
        vacating: Option<Placement>,
    ) -> Result<usize, ServiceError> {
        let mut occupied = self.registry.occupied_contexts(dst_shard);
        occupied.retain(|&c| {
            c != ctx
                && vacating
                    != Some(Placement {
                        shard: dst_shard,
                        ctx: c,
                    })
        });
        let start = self.engines[dst_shard].css_position();
        let before = sweep_cost(&self.matrix, Some(start), &occupied)?;
        occupied.push(ctx);
        let after = sweep_cost(&self.matrix, Some(start), &occupied)?;
        Ok(after.saturating_sub(before))
    }

    /// Snapshots `tenant` at the current context-switch boundary: the
    /// plane-cache digest of its configuration, its stream-register file,
    /// its queued-but-unexecuted requests (exact lane words), the source
    /// engine's CSS sweep position and its usage counters — everything a
    /// destination needs to resume it bit-for-bit (see
    /// [`mcfpga_migrate`]). Non-destructive: the tenant keeps serving.
    ///
    /// The service API is synchronous, so every call site *is* a boundary:
    /// no pass is ever mid-flight here (the parallel executor only runs
    /// inside [`drain`](Self::drain), which has returned by the time any
    /// checkpoint can be taken). Requests that already executed are not
    /// part of the checkpoint — their responses live in the source's
    /// [`drain`](Self::drain) buffer; what moves is exactly the
    /// not-yet-served work.
    pub fn checkpoint_tenant(&self, tenant: TenantId) -> Result<TenantCheckpoint, ServiceError> {
        let record = self.registry.tenant(tenant)?;
        let placement = record.placement;
        let engine = &self.engines[placement.shard];
        let pending = match engine.pending_batch(placement.ctx) {
            Some(batch) => PendingBatch {
                lanes: batch.len(),
                inputs: batch
                    .lane_inputs()
                    .into_iter()
                    .map(|(n, v)| (n.to_string(), v))
                    .collect(),
                requests: engine
                    .tickets(placement.ctx)
                    .iter()
                    .map(|(r, _)| r.value())
                    .collect(),
            },
            None => PendingBatch::default(),
        };
        let state = engine.tenant_state(tenant)?;
        Ok(TenantCheckpoint {
            name: record.name.clone(),
            digest: record.digest,
            params: self.params,
            ctx: placement.ctx,
            css_position: engine.css_position(),
            pending,
            regs: state.regs.clone(),
            usage: state.usage,
        })
    }

    /// Admits a checkpointed tenant onto `dst_shard` as a **new** tenant:
    /// the compiled plane is resolved from the plane cache by digest
    /// (rebased if the free slot differs from the checkpoint's context),
    /// the register file resumes where the last pass left it, and the
    /// pending lane words re-enter the queue unchanged — so its responses
    /// are bit-for-bit what the source would have produced. Returns the
    /// new id and a *fresh* request id per restored pending lane (in lane
    /// order): ids recorded in the checkpoint are never reissued, so a
    /// stale checkpoint cannot resurrect requests answered or discarded
    /// after it was taken.
    ///
    /// Geometry does **not** have to match exactly: a checkpoint taken on
    /// a smaller fabric restores onto a larger host of the same tile
    /// shape (same architecture, LUT arity, channel width, IO counts) by
    /// pad-and-remapping its plane — see [`CompiledFabric::rebase_onto`].
    /// Fails with [`MigrateError::GeometryMismatch`] only when the
    /// geometries are truly incompatible, with
    /// [`MigrateError::PlaneUnavailable`] when no plane with the
    /// checkpoint's digest is cached (checkpoints ship digests, not
    /// bitstreams — see [`provision_plane`](Self::provision_plane) for
    /// the recompile fallback), and with [`MigrateError::NoFreeSlot`]
    /// when `dst_shard` is full.
    pub fn restore_tenant(
        &mut self,
        ckpt: &TenantCheckpoint,
        dst_shard: usize,
    ) -> Result<(TenantId, Vec<RequestId>), ServiceError> {
        self.check_shard(dst_shard)?;
        if !self.geometry_admits(&ckpt.params) {
            return Err(MigrateError::GeometryMismatch {
                expected: format!("{:?}", self.params),
                found: format!("{:?}", ckpt.params),
            }
            .into());
        }
        let slot = best_slot(&self.registry, &self.matrix, Some(ckpt.ctx), |p| {
            p.shard == dst_shard
        })?
        .ok_or(MigrateError::NoFreeSlot { shard: dst_shard })?;
        let plane = self
            .cache
            .get(ckpt.digest)
            .ok_or(MigrateError::PlaneUnavailable {
                digest: ckpt.digest,
            })?;
        let plane = self.plane_for_slot(plane, slot.ctx)?;
        let batch = LaneBatch::from_parts(
            self.lane_width,
            ckpt.pending.lanes,
            ckpt.pending.inputs.clone(),
        )?;
        // an idle destination shard adopts the checkpointed CSS sweep
        // position: its broadcast resumes where the source's sat at the
        // boundary, so subsequent sweeps are planned and charged from the
        // same state (a shard with resident tenants keeps its own position
        // — realigning it would falsify *their* accounting); a checkpoint
        // from a deeper-context fabric may carry a position this host
        // doesn't have, in which case the host keeps its own
        if self.registry.occupied_contexts(dst_shard).is_empty()
            && ckpt.css_position < self.params.contexts
        {
            self.engines[dst_shard].resume_css_at(ckpt.css_position)?;
        }
        let realign = self.join_cost(dst_shard, slot.ctx, None)?;

        // all fallible steps done — commit the restore
        let id = self.registry.commit_restored(&ckpt.name, slot, ckpt.digest);
        let mut usage = ckpt.usage;
        usage.migrations += 1;
        usage.migration_bytes += ckpt.encoded_len();
        usage.migration_downtime_cycles += 1 + ckpt.pending.lanes;
        usage.migration_css_toggles += realign;
        let engine = &mut self.engines[dst_shard];
        engine.add_tenant_with(
            id,
            TenantState {
                usage,
                regs: ckpt.regs.clone(),
            },
        );
        engine.install_plane(slot.ctx, plane);
        engine.seed_slot(slot.ctx)?;
        // install the pending batch only when it holds work: a lane-less
        // checkpoint carries no union names (its source slot read as
        // empty), and overwriting the freshly seeded batch with it would
        // erase the canonical prefix the coverage check depends on
        let fresh = if ckpt.pending.lanes > 0 {
            self.engines[dst_shard].restore_batch(slot.ctx, batch, id, &mut self.ids)
        } else {
            Vec::new()
        };
        self.metrics.migrations.inc();
        // cross-node hop spans are the *cluster's* to record: it alone
        // knows both the source node and the old↔new request-id mapping
        self.sync_gauges();
        Ok((id, fresh))
    }

    /// Exports the compiled plane cached under `digest` for shipping to
    /// another service instance — the transfer half of a cross-node
    /// migration (checkpoints themselves carry only the digest). Does not
    /// touch the cache's hit/miss counters.
    #[must_use]
    pub fn export_plane(&self, digest: u64) -> Option<Arc<CompiledFabric>> {
        self.cache.peek(digest)
    }

    /// Imports a plane shipped from another service instance into this
    /// one's cache, so a subsequent [`restore_tenant`](Self::restore_tenant)
    /// of a checkpoint carrying `digest` finds it even though this node
    /// never routed the design. The exporter vouches that `digest` is the
    /// plane's admission-time [`Fabric::context_digest`].
    pub fn import_plane(&mut self, digest: u64, plane: Arc<CompiledFabric>) {
        self.cache.insert(digest, plane);
    }

    /// Re-provisions the compiled plane a checkpoint demands on a node
    /// that never saw the design — the recompile-at-destination fallback
    /// for the cold-cache [`MigrateError::PlaneUnavailable`] dead end
    /// (e.g. the source node died before its plane could be exported).
    ///
    /// The checkpoint's digest covers the *routed configuration*, and
    /// admission routing is deterministic per context slot
    /// (`SLOT_SEED + ctx`), so routing `netlist` on a scratch fabric
    /// of the checkpoint's own geometry reproduces the original
    /// configuration exactly — the digest proves it. Each context is
    /// tried (a tenant that migrated between admission and checkpoint
    /// carries a context index different from the one it was routed in);
    /// the first digest match is compiled and cached, after which
    /// [`restore_tenant`](Self::restore_tenant) proceeds normally. If no
    /// context reproduces the digest the netlist is not the checkpointed
    /// design and [`MigrateError::NetlistDigestMismatch`] refuses to
    /// provision it. No-op when the digest is already cached.
    ///
    /// `params` is the geometry the design was *admitted* on (the
    /// digest covers geometry too); for a tenant that never crossed
    /// geometries this is just `ckpt.params`.
    pub fn provision_plane(
        &mut self,
        digest: u64,
        netlist: &LogicNetlist,
        params: FabricParams,
    ) -> Result<(), ServiceError> {
        if self.cache.contains(digest) {
            return Ok(());
        }
        for ctx in 0..params.contexts {
            let mut scratch = Fabric::new(params)?;
            if implement_netlist_robust(
                &mut scratch,
                netlist,
                ctx,
                SLOT_SEED + ctx as u64,
                ROUTE_ATTEMPTS,
            )
            .is_err()
            {
                continue;
            }
            if scratch.context_digest(ctx)? == digest {
                let plane = CompiledFabric::compile_context(&scratch, ctx)?;
                self.cache.insert(digest, Arc::new(plane));
                return Ok(());
            }
        }
        Err(MigrateError::NetlistDigestMismatch { digest }.into())
    }

    /// Removes `tenant` from this service for good — the source-side end
    /// of a cross-node migration, called **after** the destination's
    /// [`restore_tenant`](Self::restore_tenant) succeeded. The engine
    /// surrenders the tenant's state and queued lanes (the checkpoint
    /// already carried them to the destination), a resident routed
    /// configuration is wiped, its recorded faults are dropped, and the
    /// slot frees for re-admission. The id is never reissued.
    pub fn retire_tenant(&mut self, tenant: TenantId) -> Result<(), ServiceError> {
        let record = self.registry.tenant(tenant)?;
        let placement = record.placement;
        let resident = record.resident;
        let _ = self.engines[placement.shard].expel(tenant, placement.ctx, resident)?;
        self.registry.retire(tenant)?;
        self.faults.retain(|f| f.tenant != tenant);
        self.sync_gauges();
        Ok(())
    }

    /// Live-migrates `tenant` to a free slot on `dst_shard`, preserving
    /// its request ids: the pending lane batch, register file, compiled
    /// plane (rebased if the slot index changes) and recorded faults all
    /// move, the source context is wiped, and the tenant resumes
    /// bit-for-bit — every in-flight request is still answered exactly
    /// once. The slot is chosen like an energy-aware admission (cheapest
    /// marginal sweep cost, ties toward the same context index to avoid a
    /// rebase). Migration overhead — checkpoint bytes, downtime cycles,
    /// destination realignment toggles — is billed to the tenant (see
    /// [`mcfpga_cost::attribution`]). `dst_shard` may be the tenant's own
    /// shard (an intra-shard slot move).
    pub fn migrate_tenant(
        &mut self,
        tenant: TenantId,
        dst_shard: usize,
    ) -> Result<Placement, ServiceError> {
        self.check_shard(dst_shard)?;
        let src = self.registry.tenant(tenant)?.placement;
        let dst = best_slot(&self.registry, &self.matrix, Some(src.ctx), |p| {
            p.shard == dst_shard
        })?
        .ok_or(MigrateError::NoFreeSlot { shard: dst_shard })?;
        self.migrate_to_slot(tenant, dst)
    }

    /// The migration mechanics, to an exact free destination slot: an
    /// explicit engine-to-engine handoff — `expel` on the source engine
    /// surrenders the tenant's state, plane slot and queued lanes;
    /// `adopt` on the destination installs them.
    /// The two calls are sequenced by the coordinator (never concurrent
    /// with a drain), and work unchanged when source and destination are
    /// the same engine (an intra-shard slot move).
    fn migrate_to_slot(
        &mut self,
        tenant: TenantId,
        dst: Placement,
    ) -> Result<Placement, ServiceError> {
        let record = self.registry.tenant(tenant)?;
        let src = record.placement;
        let resident = record.resident;
        // the checkpoint is what conceptually crosses the wire: its
        // encoded size is the migration's bytes-moved bill
        let ckpt = self.checkpoint_tenant(tenant)?;
        let plane =
            self.engines[src.shard]
                .plane(src.ctx)
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: src.shard,
                    ctx: src.ctx,
                })?;
        // rebase before any mutation, so an error leaves the service intact
        let plane = self.plane_for_slot(plane, dst.ctx)?;
        let realign = self.join_cost(dst.shard, dst.ctx, Some(src))?;
        self.registry.relocate(tenant, dst)?;

        // point of no return: the cross-engine handoff
        let handoff = self.engines[src.shard].expel(tenant, src.ctx, resident)?;
        self.engines[dst.shard].adopt(tenant, dst.ctx, plane, handoff)?;
        // recorded faults describe the tenant's slot; the slot moved
        for fault in &mut self.faults {
            if fault.tenant == tenant {
                fault.shard = dst.shard;
                fault.ctx = dst.ctx;
            }
        }
        let usage = &mut self.engines[dst.shard].tenant_state_mut(tenant)?.usage;
        usage.migrations += 1;
        usage.migration_bytes += ckpt.encoded_len();
        usage.migration_downtime_cycles += 1 + ckpt.pending.lanes;
        usage.migration_css_toggles += realign;
        self.metrics.migrations.inc();
        // every in-flight request hops with its tenant: one span each,
        // keyed by the (preserved) request id, detail = source shard
        for &raw in &ckpt.pending.requests {
            self.telemetry
                .span(SpanKind::MigrationHop, raw, src.shard as i64);
        }
        self.sync_gauges();
        Ok(dst)
    }

    /// Migrates **every** tenant off `shard` — the fault-evacuation /
    /// rebalancing primitive. Destinations are chosen per tenant by the
    /// same energy-aware scoring as admission, restricted to the other
    /// shards. All-or-nothing feasibility: if the rest of the pool cannot
    /// absorb every resident tenant, nothing moves and
    /// [`MigrateError::EvacuationBlocked`] reports the shortfall. Returns
    /// `(tenant, new placement)` per move, in source context order.
    pub fn evacuate_shard(
        &mut self,
        shard: usize,
    ) -> Result<Vec<(TenantId, Placement)>, ServiceError> {
        self.check_shard(shard)?;
        let tenants: Vec<TenantId> = self
            .registry
            .occupied_contexts(shard)
            .into_iter()
            .filter_map(|ctx| self.registry.occupant(shard, ctx))
            .collect();
        let free_elsewhere = self
            .registry
            .free_slots()
            .into_iter()
            .filter(|p| p.shard != shard)
            .count();
        if free_elsewhere < tenants.len() {
            return Err(MigrateError::EvacuationBlocked {
                tenants: tenants.len(),
                free_elsewhere,
            }
            .into());
        }
        let mut moved = Vec::with_capacity(tenants.len());
        for tenant in tenants {
            let src_ctx = self.registry.tenant(tenant)?.placement.ctx;
            let dst = best_slot(&self.registry, &self.matrix, Some(src_ctx), |p| {
                p.shard != shard
            })?
            .expect("feasibility prechecked: a free off-shard slot exists");
            moved.push((tenant, self.migrate_to_slot(tenant, dst)?));
        }
        Ok(moved)
    }

    /// One tenant's stream-register file (`reg:*` state carried between
    /// its passes). Empty for purely combinational tenants.
    pub fn register_file(&self, tenant: TenantId) -> Result<&RegisterFile, ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        Ok(&self.engines[placement.shard].tenant_state(tenant)?.regs)
    }

    /// Raw usage counters of one tenant (owned by its shard's engine).
    pub fn usage(&self, tenant: TenantId) -> Result<TenantUsage, ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        Ok(self.engines[placement.shard].tenant_state(tenant)?.usage)
    }

    /// One tenant's usage billed in physical units.
    pub fn bill(&self, tenant: TenantId) -> Result<TenantBill, ServiceError> {
        Ok(bill(&self.usage(tenant)?, &self.tech))
    }

    /// Markdown billing table over every admitted tenant, admission order.
    #[must_use]
    pub fn billing_report(&self) -> String {
        let rows: Vec<(String, TenantUsage)> = self
            .registry
            .iter()
            .map(|(id, rec)| {
                // every registered tenant has state in its placement
                // engine (admission/restore add it, migration hands it
                // off); a miss is a registry/engine desync — fail loudly
                // in tests instead of rendering a plausible zero row
                let state = self.engines[rec.placement.shard].tenant_state(id);
                debug_assert!(
                    state.is_ok(),
                    "tenant {id} registered on shard {} but unknown to its engine",
                    rec.placement.shard
                );
                (rec.name.clone(), state.map(|s| s.usage).unwrap_or_default())
            })
            .collect();
        render_billing(&rows, &self.tech)
    }

    /// The tenant registry (placements, digests, occupancy).
    #[must_use]
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// The compiled-plane cache (hit/miss counters). Planes are
    /// `Arc`-shared: every engine slot and every re-admission of the same
    /// digest points at one compiled plane.
    #[must_use]
    pub fn cache(&self) -> &PlaneCache {
        &self.cache
    }

    /// The per-shard engines, read-only (diagnostics; shard index ==
    /// slice index).
    #[must_use]
    pub fn engines(&self) -> &[ShardEngine] {
        &self.engines
    }

    /// Requests parked in lane batches, not yet executed.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.engines.iter().map(ShardEngine::pending_requests).sum()
    }

    /// Number of fabric shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// The shared fabric geometry of every shard.
    #[must_use]
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// The technology parameters billing is rendered against.
    #[must_use]
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// The CSS transition-cost matrix placement scoring runs against —
    /// shared with the cluster router so cross-node slot comparisons use
    /// exactly the scoring a local admission would (see
    /// [`crate::placement::best_slot_scored`]).
    #[must_use]
    pub fn cost_matrix(&self) -> &CostMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_fabric::netlist_ir::generators;

    /// Submit-time validation makes undriven-input passes unreachable
    /// through the public API, so the fault path is exercised by swapping a
    /// tenant's compiled plane for one whose bound output can never
    /// resolve — the runtime-failure class [`SlotFault`] exists for.
    #[test]
    fn faulted_slot_keeps_requests_and_spares_other_tenants() {
        let params = FabricParams::default();
        let mut svc = ShardedService::new(1, params, TechParams::default()).unwrap();
        let wire = generators::wire_lanes(1).unwrap();
        let bad = svc.admit("bad", &wire).unwrap(); // ctx 0
        let good = svc.admit("good", &wire).unwrap(); // ctx 1

        // sabotage: a plane with an output bound but never driven
        svc.inject_plane_fault(bad).unwrap();

        // the broken plane binds no inputs, so any request passes validation
        svc.submit(bad, &[("in0", true)]).unwrap();
        let ok_req = svc.submit(good, &[("in0", true)]).unwrap();

        // the healthy tenant is served; the faulted batch stays queued
        let responses = svc.drain().unwrap();
        assert_eq!(responses.len(), 1, "bad slot must not block the good one");
        assert_eq!(responses[0].request, ok_req);
        let faults = svc.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].tenant, bad);
        assert_eq!((faults[0].shard, faults[0].ctx), (0, 0));
        assert!(matches!(faults[0].error, ServiceError::Fabric(_)));
        assert_eq!(svc.pending_requests(), 1, "failed pass drops no requests");
        assert_eq!(svc.usage(bad).unwrap().passes, 0, "no successful pass");

        // the switch *into* the failing context is still charged: the CSS
        // broadcast spent that energy whether or not the pass resolved
        let toggles_before = svc.usage(bad).unwrap().css_toggles;
        assert!(svc.drain().unwrap().is_empty());
        assert_eq!(svc.take_faults().len(), 1);
        assert!(
            svc.usage(bad).unwrap().css_toggles > toggles_before,
            "sequencer sat on ctx 1, so re-entering ctx 0 toggles lines"
        );

        // explicit recovery
        assert_eq!(svc.discard_pending(bad).unwrap(), 1);
        assert_eq!(svc.pending_requests(), 0);
        assert!(svc.drain().unwrap().is_empty());
        assert!(svc.take_faults().is_empty());
    }

    /// The same seeded traffic must produce identical responses, faults
    /// and billing at every executor width — the merge-order invariant,
    /// exercised at the unit level (the stress replay covers it at scale).
    #[test]
    fn drain_output_is_independent_of_thread_count() {
        let run = |threads: usize| {
            let params = FabricParams::default();
            let mut svc = ShardedService::new(4, params, TechParams::default()).unwrap();
            svc.set_threads(threads);
            assert_eq!(svc.threads(), threads.max(1));
            let parity = generators::parity_tree(3).unwrap();
            let wire = generators::wire_lanes(1).unwrap();
            let tenants: Vec<TenantId> = (0..8)
                .map(|i| {
                    let nl = if i % 2 == 0 { &parity } else { &wire };
                    svc.admit(&format!("t{i}"), nl).unwrap()
                })
                .collect();
            let mut responses = Vec::new();
            for round in 0..5 {
                for (i, t) in tenants.iter().enumerate() {
                    let v = (round + i) % 2 == 0;
                    if i % 2 == 0 {
                        svc.submit(*t, &[("x0", v), ("x1", !v), ("x2", v)]).unwrap();
                    } else {
                        svc.submit(*t, &[("in0", v)]).unwrap();
                    }
                }
                responses.extend(svc.drain().unwrap());
            }
            (responses, svc.billing_report())
        };
        let baseline = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }
}
