//! The sharded multi-tenant execution service.
//!
//! A [`ShardedService`] owns `N` independent fabric shards (same geometry,
//! same architecture). Tenants are admitted round-robin across shards into
//! per-shard context slots; their single-vector requests coalesce in a
//! [`crate::BatchQueue`] and execute as 64-lane bit-parallel passes. Each
//! shard has its own [`ContextSequencer`], so the CSS broadcast energy of
//! every context switch is charged — and attributed to the tenant being
//! switched in — exactly as in plain schedule replay.

use crate::batch::{BatchQueue, RequestId, Response};
use crate::placement::{choose_energy_aware, netlist_fingerprint, PlacementPolicy};
use crate::registry::{Placement, PlaneCache, TenantId, TenantRegistry};
use crate::ServiceError;
use mcfpga_cost::attribution::{bill, render_billing, TenantBill, TenantUsage};
use mcfpga_css::optimize::{CostMatrix, OptimizeMode};
use mcfpga_css::Schedule;
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::{CompiledState, PushRefusal};
use mcfpga_fabric::context::ContextSequencer;
use mcfpga_fabric::route::implement_netlist_robust;
use mcfpga_fabric::{CompiledFabric, Fabric, FabricParams, LogicNetlist, TileCoord};
use std::collections::HashMap;
use std::sync::Arc;

/// Routing seed per context slot: admission is deterministic per slot, so
/// identical netlists admitted into same-index slots route identically and
/// share one cached compiled plane.
const SLOT_SEED: u64 = 0x5EED_0000;

/// Routing retry budget per admission.
const ROUTE_ATTEMPTS: usize = 16;

/// One independent fabric shard.
#[derive(Debug, Clone)]
struct Shard {
    fabric: Fabric,
    /// Per-context compiled plane (shared through the digest cache).
    planes: Vec<Option<Arc<CompiledFabric>>>,
    seq: ContextSequencer,
    /// Reusable evaluation scratch (all planes share one layout).
    scratch: Option<CompiledState>,
}

/// One slot's failed execution pass, recorded during a flush.
///
/// The slot's requests remain queued when this is raised; see
/// [`ShardedService::take_faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlotFault {
    /// The tenant whose batch failed.
    pub tenant: TenantId,
    /// Shard of the failing slot.
    pub shard: usize,
    /// Context of the failing slot.
    pub ctx: usize,
    /// What went wrong (typically an undriven bound input).
    pub error: ServiceError,
}

/// A multi-tenant batched execution runtime over `N` fabric shards.
///
/// See the [crate docs](crate) for the end-to-end picture and a runnable
/// example.
#[derive(Debug, Clone)]
pub struct ShardedService {
    params: FabricParams,
    tech: TechParams,
    registry: TenantRegistry,
    cache: PlaneCache,
    queue: BatchQueue,
    shards: Vec<Shard>,
    usage: Vec<TenantUsage>,
    ready: Vec<Response>,
    faults: Vec<SlotFault>,
    /// Sweep-ordering policy (see [`mcfpga_css::optimize`]).
    optimize: OptimizeMode,
    /// Admission slot-assignment policy.
    placement: PlacementPolicy,
    /// The arch's pairwise transition-toggle matrix — shared by the sweep
    /// optimizer, the baseline accounting and energy-aware placement.
    matrix: CostMatrix,
    /// Netlist fingerprint → context index of its first admission: the
    /// plane-cache affinity hint energy-aware placement tie-breaks on.
    affinity: HashMap<u64, usize>,
}

impl ShardedService {
    /// A service of `shards` fabrics, each shaped by `params`, with energy
    /// accounted under `tech`. Capacity is `shards × params.contexts`
    /// tenants. Sweeps are toggle-optimized ([`OptimizeMode::Optimized`] —
    /// output-equivalent to the naive order, never more energy) and
    /// admission is round-robin; see
    /// [`with_policies`](Self::with_policies) for the full policy surface.
    pub fn new(
        shards: usize,
        params: FabricParams,
        tech: TechParams,
    ) -> Result<Self, ServiceError> {
        Self::with_policies(
            shards,
            params,
            tech,
            OptimizeMode::Optimized,
            PlacementPolicy::RoundRobin,
        )
    }

    /// A service with explicit sweep-ordering and placement policies.
    pub fn with_policies(
        shards: usize,
        params: FabricParams,
        tech: TechParams,
        optimize: OptimizeMode,
        placement: PlacementPolicy,
    ) -> Result<Self, ServiceError> {
        let registry = TenantRegistry::new(shards, params.contexts)?;
        let mut built = Vec::with_capacity(shards);
        for _ in 0..shards {
            built.push(Shard {
                fabric: Fabric::new(params)?,
                planes: vec![None; params.contexts],
                seq: ContextSequencer::new(params.arch, params.contexts)?,
                scratch: None,
            });
        }
        let matrix = built[0].seq.cost_matrix();
        Ok(ShardedService {
            params,
            tech,
            registry,
            cache: PlaneCache::new(),
            queue: BatchQueue::new(shards, params.contexts),
            shards: built,
            usage: Vec::new(),
            ready: Vec::new(),
            faults: Vec::new(),
            optimize,
            placement,
            matrix,
            affinity: HashMap::new(),
        })
    }

    /// The active sweep-ordering policy.
    #[must_use]
    pub fn optimize_mode(&self) -> OptimizeMode {
        self.optimize
    }

    /// Switches the sweep-ordering policy. Takes effect on the next flush;
    /// already-queued requests are unaffected (any order is
    /// output-equivalent).
    pub fn set_optimize_mode(&mut self, mode: OptimizeMode) {
        self.optimize = mode;
    }

    /// The active placement policy.
    #[must_use]
    pub fn placement_policy(&self) -> PlacementPolicy {
        self.placement
    }

    /// Switches the placement policy for *future* admissions; existing
    /// tenants keep their slots.
    pub fn set_placement_policy(&mut self, policy: PlacementPolicy) {
        self.placement = policy;
    }

    /// Admits a tenant: assigns a `(shard, context)` slot under the active
    /// [`PlacementPolicy`], routes `netlist` into it, then reuses a cached
    /// compiled plane when the routed configuration's digest has been seen
    /// before (re-admitting an identical bitstream never recompiles).
    pub fn admit(&mut self, name: &str, netlist: &LogicNetlist) -> Result<TenantId, ServiceError> {
        let fingerprint = netlist_fingerprint(netlist);
        let placement = match self.placement {
            PlacementPolicy::RoundRobin => self.registry.reserve()?,
            PlacementPolicy::EnergyAware => choose_energy_aware(
                &self.registry,
                &self.matrix,
                self.affinity.get(&fingerprint).copied(),
            )?,
        };
        let shard = &mut self.shards[placement.shard];
        let routed = implement_netlist_robust(
            &mut shard.fabric,
            netlist,
            placement.ctx,
            SLOT_SEED + placement.ctx as u64,
            ROUTE_ATTEMPTS,
        );
        if let Err(e) = routed {
            // leave the slot exactly as reserved: free and unconfigured
            shard.fabric.clear_context(placement.ctx)?;
            return Err(e.into());
        }
        let digest = shard.fabric.context_digest(placement.ctx)?;
        let plane = self.cache.get_or_compile(digest, || {
            CompiledFabric::compile_context(&shard.fabric, placement.ctx)
        })?;
        shard.planes[placement.ctx] = Some(plane);
        let id = self.registry.commit(name, placement, digest);
        self.affinity.entry(fingerprint).or_insert(placement.ctx);
        self.usage.push(TenantUsage::default());
        self.seed_slot(placement)?;
        Ok(id)
    }

    /// Seeds the slot's canonical input-name prefix from its plane's bound
    /// inputs, so submit-time coverage checking is a bitmask instead of a
    /// second name scan.
    fn seed_slot(&mut self, placement: Placement) -> Result<(), ServiceError> {
        let plane = self.shards[placement.shard].planes[placement.ctx]
            .as_ref()
            .ok_or(ServiceError::SlotNotProgrammed {
                shard: placement.shard,
                ctx: placement.ctx,
            })?;
        let binds = plane.plane(placement.ctx)?.input_binds();
        self.queue.seed(
            placement.shard,
            placement.ctx,
            binds.iter().map(|(_, n)| n.as_str()),
        );
        Ok(())
    }

    /// Submits one single-vector request for `tenant`. The request parks in
    /// its slot's lane batch; when the 64th lane fills, the slot executes
    /// immediately and its responses become available on the next
    /// [`drain`](Self::drain).
    ///
    /// Every input the tenant's plane binds must be driven —
    /// [`ServiceError::MissingInput`] otherwise. The check happens at
    /// submit, per request, because a batched pass evaluates the union of
    /// its lanes' input names: without it, a request omitting an input a
    /// sibling request supplies would silently compute with that input
    /// as 0. Extra names the plane does not bind are ignored. (The check
    /// rides the enqueue's own name-resolution scan — see
    /// [`LaneBatch::push_covering`](mcfpga_fabric::compiled::LaneBatch::push_covering)
    /// — so it costs no extra string comparisons.)
    ///
    /// If the lane-full auto-flush's pass fails, the request (and the rest
    /// of its batch) stays queued and a [`SlotFault`] is recorded; recover
    /// with a corrected retry of [`drain`](Self::drain) or
    /// [`discard_pending`](Self::discard_pending).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        inputs: &[(&str, bool)],
    ) -> Result<RequestId, ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let (id, full) = match self.queue.enqueue(placement, tenant, inputs) {
            Ok(ok) => ok,
            Err(PushRefusal::Full) => {
                return Err(ServiceError::SlotBacklogged {
                    shard: placement.shard,
                    ctx: placement.ctx,
                })
            }
            Err(PushRefusal::MissingInput(idx)) => {
                let name = self
                    .queue
                    .input_name(placement.shard, placement.ctx, idx)
                    .unwrap_or("?")
                    .to_string();
                return Err(ServiceError::MissingInput { name });
            }
        };
        self.usage[tenant.index()].requests += 1;
        if full {
            self.run_shard(placement.shard, &[placement.ctx])?;
        }
        Ok(id)
    }

    /// Discards `tenant`'s queued, not-yet-executed requests, returning how
    /// many were dropped. The escape hatch for a poisoned batch (one whose
    /// flush keeps faulting); discarded requests never receive responses
    /// and are removed from the tenant's usage counters, so
    /// `vectors_per_pass` keeps reflecting requests actually served.
    pub fn discard_pending(&mut self, tenant: TenantId) -> Result<usize, ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let dropped = self
            .queue
            .take(placement.shard, placement.ctx)
            .map_or(0, |t| t.tickets.len());
        self.usage[tenant.index()].requests -= dropped;
        // the fresh slot lost its canonical prefix; re-seed it
        self.seed_slot(placement)?;
        Ok(dropped)
    }

    /// Flushes every slot with pending work — each shard sweeps only its
    /// *active* contexts ([`Schedule::active_sweep`]), so idle tenants cost
    /// no broadcast toggles — and returns all completed responses,
    /// including those from earlier lane-full auto-flushes.
    ///
    /// A slot whose pass fails (e.g. a request omitted one of its tenant's
    /// bound inputs) never blocks the others: its requests stay queued, a
    /// [`SlotFault`] is recorded (see [`take_faults`](Self::take_faults)),
    /// and the sweep continues — one tenant's malformed request cannot
    /// withhold other tenants' responses.
    pub fn drain(&mut self) -> Result<Vec<Response>, ServiceError> {
        for shard in 0..self.shards.len() {
            let active = self.queue.pending(shard);
            if !active.is_empty() {
                self.run_shard(shard, &active)?;
            }
        }
        Ok(std::mem::take(&mut self.ready))
    }

    /// Removes and returns the per-slot execution faults recorded since the
    /// last call, oldest first. Each faulted slot's requests are still
    /// queued: fix and [`drain`](Self::drain) again, or
    /// [`discard_pending`](Self::discard_pending) the poisoned batch.
    pub fn take_faults(&mut self) -> Vec<SlotFault> {
        std::mem::take(&mut self.faults)
    }

    /// Chaos-testing hook: swaps `tenant`'s compiled plane for one whose
    /// bound output can never resolve, so the slot's next pass fails and
    /// surfaces as a [`SlotFault`] (requests stay queued, exactly as for a
    /// real plane corruption). The tenant's routed fabric configuration is
    /// untouched — [`repair_plane`](Self::repair_plane) restores service.
    pub fn inject_plane_fault(&mut self, tenant: TenantId) -> Result<(), ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let mut broken = Fabric::new(self.params)?;
        broken.bind_output(TileCoord { x: 0, y: 0 }, 0, placement.ctx, "poisoned")?;
        self.shards[placement.shard].planes[placement.ctx] = Some(Arc::new(
            CompiledFabric::compile_context(&broken, placement.ctx)?,
        ));
        Ok(())
    }

    /// Restores `tenant`'s true compiled plane after
    /// [`inject_plane_fault`](Self::inject_plane_fault) (or any plane
    /// corruption), by digest: the admission-time digest recorded in the
    /// registry finds the cached plane, recompiling from the tenant's
    /// still-routed fabric configuration only on a cache miss. Queued
    /// requests survive and serve normally on the next flush.
    pub fn repair_plane(&mut self, tenant: TenantId) -> Result<(), ServiceError> {
        let record = self.registry.tenant(tenant)?;
        let placement = record.placement;
        let digest = record.digest;
        let shard = &self.shards[placement.shard];
        let plane = self.cache.get_or_compile(digest, || {
            CompiledFabric::compile_context(&shard.fabric, placement.ctx)
        })?;
        self.shards[placement.shard].planes[placement.ctx] = Some(plane);
        Ok(())
    }

    /// Executes the pending batches of `active` contexts on one shard, in
    /// CSS schedule order — reordered for minimum broadcast toggles under
    /// [`OptimizeMode::Optimized`] — charging switch energy to the tenant
    /// switched in, alongside the *baseline* toggles the naive ascending
    /// order would have charged (so each bill carries what the optimizer
    /// saved; see [`mcfpga_cost::attribution`]).
    ///
    /// A slot's batch is removed from the queue only *after* its pass
    /// succeeds — a failed pass records a [`SlotFault`], keeps its requests
    /// queued, and moves on to the next context, so no issued [`RequestId`]
    /// is ever silently dropped and no slot blocks its neighbours. The
    /// `Err` branch is reserved for structural failures (a broken schedule
    /// domain or registry/plane invariant).
    fn run_shard(&mut self, shard_idx: usize, active: &[usize]) -> Result<(), ServiceError> {
        let naive = Schedule::active_sweep(self.params.contexts, active)?;
        // the counterfactual: per-context toggles of the naive ascending
        // walk from the broadcast's current position (each active context
        // appears exactly once in a sweep, so a map by context is sound)
        let start = self.shards[shard_idx].seq.current();
        let baseline: Vec<(usize, usize)> = naive
            .as_slice()
            .iter()
            .copied()
            .zip(self.matrix.step_costs(Some(start), naive.as_slice())?)
            .collect();
        let schedule =
            self.shards[shard_idx]
                .seq
                .plan_sweep_with(&naive, self.optimize, &self.matrix)?;
        for ctx in schedule.iter() {
            let Some(batch) = self.queue.slot(shard_idx, ctx) else {
                continue;
            };
            let tenant =
                self.registry
                    .occupant(shard_idx, ctx)
                    .ok_or(ServiceError::SlotNotProgrammed {
                        shard: shard_idx,
                        ctx,
                    })?;
            let shard = &mut self.shards[shard_idx];
            let plane = shard.planes[ctx]
                .clone()
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: shard_idx,
                    ctx,
                })?;
            // the CSS broadcast swaps the active plane; its toggles are
            // charged at switch time — the broadcast network spent that
            // energy whether or not the pass below resolves
            let toggles = shard.seq.step_to(ctx)?;
            self.usage[tenant.index()].css_toggles += toggles;
            self.usage[tenant.index()].css_toggles_baseline += baseline
                .iter()
                .find(|(c, _)| *c == ctx)
                .map_or(toggles, |(_, cost)| *cost);
            let scratch = shard.scratch.get_or_insert_with(|| plane.new_state());
            let outs = match plane.eval_batch_into(ctx, &batch.lane_inputs(), scratch) {
                Ok(outs) => outs,
                Err(e) => {
                    self.faults.push(SlotFault {
                        tenant,
                        shard: shard_idx,
                        ctx,
                        error: e.into(),
                    });
                    continue;
                }
            };
            let taken = self
                .queue
                .take(shard_idx, ctx)
                .expect("slot was non-empty and the pass just succeeded");
            self.usage[tenant.index()].passes += 1;
            // one Arc per output name, shared by all the pass's responses —
            // demuxing a full 64-lane batch allocates no strings
            let names: Vec<Arc<str>> = outs.iter().map(|(n, _)| Arc::from(n.as_str())).collect();
            for (lane, (request, owner)) in taken.tickets.iter().enumerate() {
                self.ready.push(Response {
                    request: *request,
                    tenant: *owner,
                    outputs: names
                        .iter()
                        .zip(&outs)
                        .map(|(n, (_, word))| (Arc::clone(n), (word >> lane) & 1 == 1))
                        .collect(),
                });
            }
            // hand the emptied buffers back to the slot (cleared, capacity
            // kept) so steady-state flushes re-allocate nothing
            self.queue.recycle(shard_idx, ctx, taken);
        }
        Ok(())
    }

    /// Raw usage counters of one tenant.
    pub fn usage(&self, tenant: TenantId) -> Result<TenantUsage, ServiceError> {
        self.registry.tenant(tenant)?; // validates the id
        Ok(self.usage[tenant.index()])
    }

    /// One tenant's usage billed in physical units.
    pub fn bill(&self, tenant: TenantId) -> Result<TenantBill, ServiceError> {
        Ok(bill(&self.usage(tenant)?, &self.tech))
    }

    /// Markdown billing table over every admitted tenant.
    #[must_use]
    pub fn billing_report(&self) -> String {
        let rows: Vec<(String, TenantUsage)> = self
            .registry
            .iter()
            .map(|(id, rec)| (rec.name.clone(), self.usage[id.index()]))
            .collect();
        render_billing(&rows, &self.tech)
    }

    /// The tenant registry (placements, digests, occupancy).
    #[must_use]
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// The compiled-plane cache (hit/miss counters).
    #[must_use]
    pub fn cache(&self) -> &PlaneCache {
        &self.cache
    }

    /// Requests parked in lane batches, not yet executed.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queue.pending_total()
    }

    /// Number of fabric shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared fabric geometry of every shard.
    #[must_use]
    pub fn params(&self) -> &FabricParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_fabric::netlist_ir::generators;
    use mcfpga_fabric::TileCoord;

    /// Submit-time validation makes undriven-input passes unreachable
    /// through the public API, so the fault path is exercised by swapping a
    /// tenant's compiled plane for one whose bound output can never
    /// resolve — the runtime-failure class [`SlotFault`] exists for.
    #[test]
    fn faulted_slot_keeps_requests_and_spares_other_tenants() {
        let params = FabricParams::default();
        let mut svc = ShardedService::new(1, params, TechParams::default()).unwrap();
        let wire = generators::wire_lanes(1).unwrap();
        let bad = svc.admit("bad", &wire).unwrap(); // ctx 0
        let good = svc.admit("good", &wire).unwrap(); // ctx 1

        // sabotage: a plane with an output bound but never driven
        let mut broken = Fabric::new(params).unwrap();
        broken
            .bind_output(TileCoord { x: 0, y: 0 }, 0, 0, "y")
            .unwrap();
        svc.shards[0].planes[0] = Some(Arc::new(
            CompiledFabric::compile_context(&broken, 0).unwrap(),
        ));

        // the broken plane binds no inputs, so any request passes validation
        svc.submit(bad, &[("in0", true)]).unwrap();
        let ok_req = svc.submit(good, &[("in0", true)]).unwrap();

        // the healthy tenant is served; the faulted batch stays queued
        let responses = svc.drain().unwrap();
        assert_eq!(responses.len(), 1, "bad slot must not block the good one");
        assert_eq!(responses[0].request, ok_req);
        let faults = svc.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].tenant, bad);
        assert_eq!((faults[0].shard, faults[0].ctx), (0, 0));
        assert!(matches!(faults[0].error, ServiceError::Fabric(_)));
        assert_eq!(svc.pending_requests(), 1, "failed pass drops no requests");
        assert_eq!(svc.usage(bad).unwrap().passes, 0, "no successful pass");

        // the switch *into* the failing context is still charged: the CSS
        // broadcast spent that energy whether or not the pass resolved
        let toggles_before = svc.usage(bad).unwrap().css_toggles;
        assert!(svc.drain().unwrap().is_empty());
        assert_eq!(svc.take_faults().len(), 1);
        assert!(
            svc.usage(bad).unwrap().css_toggles > toggles_before,
            "sequencer sat on ctx 1, so re-entering ctx 0 toggles lines"
        );

        // explicit recovery
        assert_eq!(svc.discard_pending(bad).unwrap(), 1);
        assert_eq!(svc.pending_requests(), 0);
        assert!(svc.drain().unwrap().is_empty());
        assert!(svc.take_faults().is_empty());
    }
}
