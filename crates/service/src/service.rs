//! The sharded multi-tenant execution service.
//!
//! A [`ShardedService`] owns `N` independent fabric shards (same geometry,
//! same architecture). Tenants are admitted round-robin across shards into
//! per-shard context slots; their single-vector requests coalesce in a
//! [`crate::BatchQueue`] and execute as 64-lane bit-parallel passes. Each
//! shard has its own [`ContextSequencer`], so the CSS broadcast energy of
//! every context switch is charged — and attributed to the tenant being
//! switched in — exactly as in plain schedule replay.

use crate::batch::{BatchQueue, RequestId, Response};
use crate::placement::{best_slot, choose_energy_aware, netlist_fingerprint, PlacementPolicy};
use crate::registry::{Placement, PlaneCache, TenantId, TenantRegistry};
use crate::ServiceError;
use mcfpga_cost::attribution::{bill, render_billing, TenantBill, TenantUsage};
use mcfpga_css::optimize::{sweep_cost, CostMatrix, OptimizeMode};
use mcfpga_css::Schedule;
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::{CompiledState, LaneBatch, PushRefusal};
use mcfpga_fabric::context::ContextSequencer;
use mcfpga_fabric::route::implement_netlist_robust;
use mcfpga_fabric::{CompiledFabric, Fabric, FabricParams, LogicNetlist, RegisterFile, TileCoord};
use mcfpga_migrate::{MigrateError, PendingBatch, TenantCheckpoint};
use std::collections::HashMap;
use std::sync::Arc;

/// Prefix of signal names that are *stream registers*: outputs so named
/// are captured into the tenant's [`RegisterFile`] after each pass and
/// re-driven as inputs on its next pass (lane-aligned), instead of being
/// returned in responses. The same convention `fabric::temporal` uses for
/// values crossing context-switch boundaries.
const REG_PREFIX: &str = "reg:";

/// Routing seed per context slot: admission is deterministic per slot, so
/// identical netlists admitted into same-index slots route identically and
/// share one cached compiled plane.
const SLOT_SEED: u64 = 0x5EED_0000;

/// Routing retry budget per admission.
const ROUTE_ATTEMPTS: usize = 16;

/// One independent fabric shard.
#[derive(Debug, Clone)]
struct Shard {
    fabric: Fabric,
    /// Per-context compiled plane (shared through the digest cache).
    planes: Vec<Option<Arc<CompiledFabric>>>,
    seq: ContextSequencer,
    /// Reusable evaluation scratch (all planes share one layout).
    scratch: Option<CompiledState>,
}

/// One slot's failed execution pass, recorded during a flush.
///
/// The slot's requests remain queued when this is raised; see
/// [`ShardedService::take_faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlotFault {
    /// The tenant whose batch failed.
    pub tenant: TenantId,
    /// Shard of the failing slot.
    pub shard: usize,
    /// Context of the failing slot.
    pub ctx: usize,
    /// What went wrong (typically an undriven bound input).
    pub error: ServiceError,
}

/// A multi-tenant batched execution runtime over `N` fabric shards.
///
/// See the [crate docs](crate) for the end-to-end picture and a runnable
/// example.
#[derive(Debug, Clone)]
pub struct ShardedService {
    params: FabricParams,
    tech: TechParams,
    registry: TenantRegistry,
    cache: PlaneCache,
    queue: BatchQueue,
    shards: Vec<Shard>,
    usage: Vec<TenantUsage>,
    /// Per-tenant stream-register state (`reg:*` outputs fed back as
    /// inputs pass-to-pass); indexed like `usage`.
    regs: Vec<RegisterFile>,
    ready: Vec<Response>,
    faults: Vec<SlotFault>,
    /// Sweep-ordering policy (see [`mcfpga_css::optimize`]).
    optimize: OptimizeMode,
    /// Admission slot-assignment policy.
    placement: PlacementPolicy,
    /// The arch's pairwise transition-toggle matrix — shared by the sweep
    /// optimizer, the baseline accounting and energy-aware placement.
    matrix: CostMatrix,
    /// Netlist fingerprint → context index of its first admission: the
    /// plane-cache affinity hint energy-aware placement tie-breaks on.
    affinity: HashMap<u64, usize>,
}

impl ShardedService {
    /// A service of `shards` fabrics, each shaped by `params`, with energy
    /// accounted under `tech`. Capacity is `shards × params.contexts`
    /// tenants. Sweeps are toggle-optimized ([`OptimizeMode::Optimized`] —
    /// output-equivalent to the naive order, never more energy) and
    /// admission is round-robin; see
    /// [`with_policies`](Self::with_policies) for the full policy surface.
    pub fn new(
        shards: usize,
        params: FabricParams,
        tech: TechParams,
    ) -> Result<Self, ServiceError> {
        Self::with_policies(
            shards,
            params,
            tech,
            OptimizeMode::Optimized,
            PlacementPolicy::RoundRobin,
        )
    }

    /// A service with explicit sweep-ordering and placement policies.
    pub fn with_policies(
        shards: usize,
        params: FabricParams,
        tech: TechParams,
        optimize: OptimizeMode,
        placement: PlacementPolicy,
    ) -> Result<Self, ServiceError> {
        let registry = TenantRegistry::new(shards, params.contexts)?;
        let mut built = Vec::with_capacity(shards);
        for _ in 0..shards {
            built.push(Shard {
                fabric: Fabric::new(params)?,
                planes: vec![None; params.contexts],
                seq: ContextSequencer::new(params.arch, params.contexts)?,
                scratch: None,
            });
        }
        let matrix = built[0].seq.cost_matrix();
        Ok(ShardedService {
            params,
            tech,
            registry,
            cache: PlaneCache::new(),
            queue: BatchQueue::new(shards, params.contexts),
            shards: built,
            usage: Vec::new(),
            regs: Vec::new(),
            ready: Vec::new(),
            faults: Vec::new(),
            optimize,
            placement,
            matrix,
            affinity: HashMap::new(),
        })
    }

    /// The active sweep-ordering policy.
    #[must_use]
    pub fn optimize_mode(&self) -> OptimizeMode {
        self.optimize
    }

    /// Switches the sweep-ordering policy. Takes effect on the next flush;
    /// already-queued requests are unaffected (any order is
    /// output-equivalent).
    pub fn set_optimize_mode(&mut self, mode: OptimizeMode) {
        self.optimize = mode;
    }

    /// The active placement policy.
    #[must_use]
    pub fn placement_policy(&self) -> PlacementPolicy {
        self.placement
    }

    /// Switches the placement policy for *future* admissions; existing
    /// tenants keep their slots.
    pub fn set_placement_policy(&mut self, policy: PlacementPolicy) {
        self.placement = policy;
    }

    /// Admits a tenant: assigns a `(shard, context)` slot under the active
    /// [`PlacementPolicy`], routes `netlist` into it, then reuses a cached
    /// compiled plane when the routed configuration's digest has been seen
    /// before (re-admitting an identical bitstream never recompiles).
    pub fn admit(&mut self, name: &str, netlist: &LogicNetlist) -> Result<TenantId, ServiceError> {
        let fingerprint = netlist_fingerprint(netlist);
        let placement = match self.placement {
            PlacementPolicy::RoundRobin => self.registry.reserve()?,
            PlacementPolicy::EnergyAware => choose_energy_aware(
                &self.registry,
                &self.matrix,
                self.affinity.get(&fingerprint).copied(),
            )?,
        };
        let shard = &mut self.shards[placement.shard];
        let routed = implement_netlist_robust(
            &mut shard.fabric,
            netlist,
            placement.ctx,
            SLOT_SEED + placement.ctx as u64,
            ROUTE_ATTEMPTS,
        );
        if let Err(e) = routed {
            // leave the slot exactly as reserved: free and unconfigured
            shard.fabric.clear_context(placement.ctx)?;
            return Err(e.into());
        }
        let digest = shard.fabric.context_digest(placement.ctx)?;
        let plane = self.cache.get_or_compile(digest, || {
            CompiledFabric::compile_context(&shard.fabric, placement.ctx)
        })?;
        shard.planes[placement.ctx] = Some(plane);
        let id = self.registry.commit(name, placement, digest);
        self.affinity.entry(fingerprint).or_insert(placement.ctx);
        self.usage.push(TenantUsage::default());
        self.regs.push(RegisterFile::new());
        self.seed_slot(placement)?;
        Ok(id)
    }

    /// Seeds the slot's canonical input-name prefix from its plane's bound
    /// inputs, so submit-time coverage checking is a bitmask instead of a
    /// second name scan. Stream registers (`reg:*` bound inputs) are
    /// excluded — requests never drive them; the executor feeds them from
    /// the tenant's [`RegisterFile`] at pass time.
    fn seed_slot(&mut self, placement: Placement) -> Result<(), ServiceError> {
        let plane = self.shards[placement.shard].planes[placement.ctx]
            .as_ref()
            .ok_or(ServiceError::SlotNotProgrammed {
                shard: placement.shard,
                ctx: placement.ctx,
            })?;
        let binds = plane.plane(placement.ctx)?.input_binds();
        self.queue.seed(
            placement.shard,
            placement.ctx,
            binds
                .iter()
                .map(|(_, n)| n.as_str())
                .filter(|n| !n.starts_with(REG_PREFIX)),
        );
        Ok(())
    }

    /// Submits one single-vector request for `tenant`. The request parks in
    /// its slot's lane batch; when the 64th lane fills, the slot executes
    /// immediately and its responses become available on the next
    /// [`drain`](Self::drain).
    ///
    /// Every input the tenant's plane binds must be driven —
    /// [`ServiceError::MissingInput`] otherwise. The check happens at
    /// submit, per request, because a batched pass evaluates the union of
    /// its lanes' input names: without it, a request omitting an input a
    /// sibling request supplies would silently compute with that input
    /// as 0. Extra names the plane does not bind are ignored. (The check
    /// rides the enqueue's own name-resolution scan — see
    /// [`LaneBatch::push_covering`](mcfpga_fabric::compiled::LaneBatch::push_covering)
    /// — so it costs no extra string comparisons.)
    ///
    /// If the lane-full auto-flush's pass fails, the request (and the rest
    /// of its batch) stays queued and a [`SlotFault`] is recorded; recover
    /// with a corrected retry of [`drain`](Self::drain) or
    /// [`discard_pending`](Self::discard_pending).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        inputs: &[(&str, bool)],
    ) -> Result<RequestId, ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let (id, full) = match self.queue.enqueue(placement, tenant, inputs) {
            Ok(ok) => ok,
            Err(PushRefusal::Full) => {
                return Err(ServiceError::SlotBacklogged {
                    shard: placement.shard,
                    ctx: placement.ctx,
                })
            }
            Err(PushRefusal::MissingInput(idx)) => {
                let name = self
                    .queue
                    .input_name(placement.shard, placement.ctx, idx)
                    .unwrap_or("?")
                    .to_string();
                return Err(ServiceError::MissingInput { name });
            }
        };
        self.usage[tenant.index()].requests += 1;
        if full {
            self.run_shard(placement.shard, &[placement.ctx])?;
        }
        Ok(id)
    }

    /// Discards `tenant`'s queued, not-yet-executed requests, returning how
    /// many were dropped. The escape hatch for a poisoned batch (one whose
    /// flush keeps faulting); discarded requests never receive responses
    /// and are removed from the tenant's usage counters, so
    /// `vectors_per_pass` keeps reflecting requests actually served.
    pub fn discard_pending(&mut self, tenant: TenantId) -> Result<usize, ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let dropped = self
            .queue
            .take(placement.shard, placement.ctx)
            .map_or(0, |t| t.tickets.len());
        self.usage[tenant.index()].requests -= dropped;
        // the fresh slot lost its canonical prefix; re-seed it
        self.seed_slot(placement)?;
        Ok(dropped)
    }

    /// Flushes every slot with pending work — each shard sweeps only its
    /// *active* contexts ([`Schedule::active_sweep`]), so idle tenants cost
    /// no broadcast toggles — and returns all completed responses,
    /// including those from earlier lane-full auto-flushes.
    ///
    /// A slot whose pass fails (e.g. a request omitted one of its tenant's
    /// bound inputs) never blocks the others: its requests stay queued, a
    /// [`SlotFault`] is recorded (see [`take_faults`](Self::take_faults)),
    /// and the sweep continues — one tenant's malformed request cannot
    /// withhold other tenants' responses.
    pub fn drain(&mut self) -> Result<Vec<Response>, ServiceError> {
        for shard in 0..self.shards.len() {
            let active = self.queue.pending(shard);
            if !active.is_empty() {
                self.run_shard(shard, &active)?;
            }
        }
        Ok(std::mem::take(&mut self.ready))
    }

    /// Removes and returns the per-slot execution faults recorded since the
    /// last call, oldest first. Each faulted slot's requests are still
    /// queued: fix and [`drain`](Self::drain) again, or
    /// [`discard_pending`](Self::discard_pending) the poisoned batch.
    pub fn take_faults(&mut self) -> Vec<SlotFault> {
        std::mem::take(&mut self.faults)
    }

    /// Chaos-testing hook: swaps `tenant`'s compiled plane for one whose
    /// bound output can never resolve, so the slot's next pass fails and
    /// surfaces as a [`SlotFault`] (requests stay queued, exactly as for a
    /// real plane corruption). The tenant's routed fabric configuration is
    /// untouched — [`repair_plane`](Self::repair_plane) restores service.
    pub fn inject_plane_fault(&mut self, tenant: TenantId) -> Result<(), ServiceError> {
        let placement = self.registry.tenant(tenant)?.placement;
        let mut broken = Fabric::new(self.params)?;
        broken.bind_output(TileCoord { x: 0, y: 0 }, 0, placement.ctx, "poisoned")?;
        self.shards[placement.shard].planes[placement.ctx] = Some(Arc::new(
            CompiledFabric::compile_context(&broken, placement.ctx)?,
        ));
        Ok(())
    }

    /// Restores `tenant`'s true compiled plane after
    /// [`inject_plane_fault`](Self::inject_plane_fault) (or any plane
    /// corruption), by digest: the admission-time digest recorded in the
    /// registry finds the cached plane — rebased to the tenant's current
    /// slot if a migration moved it off its admission context — and a
    /// cache miss recompiles from the tenant's still-routed fabric
    /// configuration. A *migrated* tenant has no routed configuration to
    /// recompile from (only the plane travelled), so for it a cache miss
    /// is [`MigrateError::PlaneUnavailable`] rather than a silent compile
    /// of an empty context. Queued requests survive and serve normally on
    /// the next flush.
    pub fn repair_plane(&mut self, tenant: TenantId) -> Result<(), ServiceError> {
        let record = self.registry.tenant(tenant)?;
        let placement = record.placement;
        let digest = record.digest;
        let plane = if record.resident {
            let shard = &self.shards[placement.shard];
            self.cache.get_or_compile(digest, || {
                CompiledFabric::compile_context(&shard.fabric, placement.ctx)
            })?
        } else {
            self.cache
                .get(digest)
                .ok_or(MigrateError::PlaneUnavailable { digest })?
        };
        self.shards[placement.shard].planes[placement.ctx] =
            Some(Self::plane_for_slot(plane, placement.ctx)?);
        // re-establish the canonical submit-coverage prefix from the true
        // plane: a migration or discard that happened *while* the slot held
        // a corrupted plane seeded from that plane's (empty) binds, and
        // without this the repaired tenant would accept under-driven
        // requests and silently evaluate the omissions as 0
        self.seed_slot(placement)?;
        Ok(())
    }

    /// `plane`, usable from context `ctx`: as-is when it was compiled
    /// there, rebased otherwise (compiled planes are context-independent;
    /// see [`CompiledFabric::rebase_context`]).
    fn plane_for_slot(
        plane: Arc<CompiledFabric>,
        ctx: usize,
    ) -> Result<Arc<CompiledFabric>, ServiceError> {
        if plane.compiled_context() == Some(ctx) {
            Ok(plane)
        } else {
            Ok(Arc::new(plane.rebase_context(ctx)?))
        }
    }

    fn check_shard(&self, shard: usize) -> Result<(), ServiceError> {
        if shard >= self.shards.len() {
            return Err(ServiceError::NoSuchShard {
                shard,
                shards: self.shards.len(),
            });
        }
        Ok(())
    }

    /// Modeled broadcast toggles the destination shard's sweeps gain when
    /// `ctx` joins its occupied set — the migration's realignment charge.
    /// `vacating` is the slot the mover is leaving: for an intra-shard
    /// move it sits on the destination shard but will not be occupied
    /// after the move, so it is excluded from both sweeps.
    fn join_cost(
        &self,
        dst_shard: usize,
        ctx: usize,
        vacating: Option<Placement>,
    ) -> Result<usize, ServiceError> {
        let mut occupied = self.registry.occupied_contexts(dst_shard);
        occupied.retain(|&c| {
            c != ctx
                && vacating
                    != Some(Placement {
                        shard: dst_shard,
                        ctx: c,
                    })
        });
        let start = self.shards[dst_shard].seq.current();
        let before = sweep_cost(&self.matrix, Some(start), &occupied)?;
        occupied.push(ctx);
        let after = sweep_cost(&self.matrix, Some(start), &occupied)?;
        Ok(after.saturating_sub(before))
    }

    /// Snapshots `tenant` at the current context-switch boundary: the
    /// plane-cache digest of its configuration, its stream-register file,
    /// its queued-but-unexecuted requests (exact lane words), the source
    /// shard's CSS sweep position and its usage counters — everything a
    /// destination needs to resume it bit-for-bit (see
    /// [`mcfpga_migrate`]). Non-destructive: the tenant keeps serving.
    ///
    /// The service API is synchronous, so every call site *is* a boundary:
    /// no pass is ever mid-flight here. Requests that already executed are
    /// not part of the checkpoint — their responses live in the source's
    /// [`drain`](Self::drain) buffer; what moves is exactly the
    /// not-yet-served work.
    pub fn checkpoint_tenant(&self, tenant: TenantId) -> Result<TenantCheckpoint, ServiceError> {
        let record = self.registry.tenant(tenant)?;
        let placement = record.placement;
        let pending = match self.queue.slot(placement.shard, placement.ctx) {
            Some(batch) => PendingBatch {
                lanes: batch.len(),
                inputs: batch
                    .lane_inputs()
                    .into_iter()
                    .map(|(n, v)| (n.to_string(), v))
                    .collect(),
                requests: self
                    .queue
                    .tickets(placement.shard, placement.ctx)
                    .iter()
                    .map(|(r, _)| r.value())
                    .collect(),
            },
            None => PendingBatch::default(),
        };
        Ok(TenantCheckpoint {
            name: record.name.clone(),
            digest: record.digest,
            params: self.params,
            ctx: placement.ctx,
            css_position: self.shards[placement.shard].seq.current(),
            pending,
            regs: self.regs[tenant.index()].clone(),
            usage: self.usage[tenant.index()],
        })
    }

    /// Admits a checkpointed tenant onto `dst_shard` as a **new** tenant:
    /// the compiled plane is resolved from the plane cache by digest
    /// (rebased if the free slot differs from the checkpoint's context),
    /// the register file resumes where the last pass left it, and the
    /// pending lane words re-enter the queue unchanged — so its responses
    /// are bit-for-bit what the source would have produced. Returns the
    /// new id and a *fresh* request id per restored pending lane (in lane
    /// order): ids recorded in the checkpoint are never reissued, so a
    /// stale checkpoint cannot resurrect requests answered or discarded
    /// after it was taken.
    ///
    /// Fails with [`MigrateError::GeometryMismatch`] on a differently
    /// shaped service, [`MigrateError::PlaneUnavailable`] when no plane
    /// with the checkpoint's digest is cached (checkpoints ship digests,
    /// not bitstreams), and [`MigrateError::NoFreeSlot`] when `dst_shard`
    /// is full.
    pub fn restore_tenant(
        &mut self,
        ckpt: &TenantCheckpoint,
        dst_shard: usize,
    ) -> Result<(TenantId, Vec<RequestId>), ServiceError> {
        self.check_shard(dst_shard)?;
        if ckpt.params != self.params {
            return Err(MigrateError::GeometryMismatch {
                expected: format!("{:?}", self.params),
                found: format!("{:?}", ckpt.params),
            }
            .into());
        }
        let slot = best_slot(&self.registry, &self.matrix, Some(ckpt.ctx), |p| {
            p.shard == dst_shard
        })?
        .ok_or(MigrateError::NoFreeSlot { shard: dst_shard })?;
        let plane = self
            .cache
            .get(ckpt.digest)
            .ok_or(MigrateError::PlaneUnavailable {
                digest: ckpt.digest,
            })?;
        let plane = Self::plane_for_slot(plane, slot.ctx)?;
        let batch = LaneBatch::from_parts(ckpt.pending.lanes, ckpt.pending.inputs.clone())?;
        // an idle destination shard adopts the checkpointed CSS sweep
        // position: its broadcast resumes where the source's sat at the
        // boundary, so subsequent sweeps are planned and charged from the
        // same state (a shard with resident tenants keeps its own position
        // — realigning it would falsify *their* accounting)
        if self.registry.occupied_contexts(dst_shard).is_empty() {
            self.shards[dst_shard].seq.resume_at(ckpt.css_position)?;
        }
        let realign = self.join_cost(dst_shard, slot.ctx, None)?;

        // all fallible steps done — commit the restore
        let id = self.registry.commit_restored(&ckpt.name, slot, ckpt.digest);
        let mut usage = ckpt.usage;
        usage.migrations += 1;
        usage.migration_bytes += ckpt.encoded_len();
        usage.migration_downtime_cycles += 1 + ckpt.pending.lanes;
        usage.migration_css_toggles += realign;
        self.usage.push(usage);
        self.regs.push(ckpt.regs.clone());
        self.shards[dst_shard].planes[slot.ctx] = Some(plane);
        self.seed_slot(slot)?;
        // install the pending batch only when it holds work: a lane-less
        // checkpoint carries no union names (its source slot read as
        // empty), and overwriting the freshly seeded batch with it would
        // erase the canonical prefix the coverage check depends on
        let fresh = if ckpt.pending.lanes > 0 {
            self.queue.restore(slot.shard, slot.ctx, batch, id)
        } else {
            Vec::new()
        };
        Ok((id, fresh))
    }

    /// Live-migrates `tenant` to a free slot on `dst_shard`, preserving
    /// its request ids: the pending lane batch, register file, compiled
    /// plane (rebased if the slot index changes) and recorded faults all
    /// move, the source context is wiped, and the tenant resumes
    /// bit-for-bit — every in-flight request is still answered exactly
    /// once. The slot is chosen like an energy-aware admission (cheapest
    /// marginal sweep cost, ties toward the same context index to avoid a
    /// rebase). Migration overhead — checkpoint bytes, downtime cycles,
    /// destination realignment toggles — is billed to the tenant (see
    /// [`mcfpga_cost::attribution`]). `dst_shard` may be the tenant's own
    /// shard (an intra-shard slot move).
    pub fn migrate_tenant(
        &mut self,
        tenant: TenantId,
        dst_shard: usize,
    ) -> Result<Placement, ServiceError> {
        self.check_shard(dst_shard)?;
        let src = self.registry.tenant(tenant)?.placement;
        let dst = best_slot(&self.registry, &self.matrix, Some(src.ctx), |p| {
            p.shard == dst_shard
        })?
        .ok_or(MigrateError::NoFreeSlot { shard: dst_shard })?;
        self.migrate_to_slot(tenant, dst)
    }

    /// The migration mechanics, to an exact free destination slot.
    fn migrate_to_slot(
        &mut self,
        tenant: TenantId,
        dst: Placement,
    ) -> Result<Placement, ServiceError> {
        let record = self.registry.tenant(tenant)?;
        let src = record.placement;
        let resident = record.resident;
        // the checkpoint is what conceptually crosses the wire: its
        // encoded size is the migration's bytes-moved bill
        let ckpt = self.checkpoint_tenant(tenant)?;
        let plane = self.shards[src.shard].planes[src.ctx].clone().ok_or(
            ServiceError::SlotNotProgrammed {
                shard: src.shard,
                ctx: src.ctx,
            },
        )?;
        // rebase before any mutation, so an error leaves the service intact
        let plane = Self::plane_for_slot(plane, dst.ctx)?;
        let realign = self.join_cost(dst.shard, dst.ctx, Some(src))?;
        self.registry.relocate(tenant, dst)?;

        // point of no return: move plane, queue contents and fabric state
        self.shards[src.shard].planes[src.ctx] = None;
        if resident {
            self.shards[src.shard].fabric.clear_context(src.ctx)?;
        }
        let taken = self.queue.take(src.shard, src.ctx);
        // the freed slot must not leak its union names or canonical prefix
        // into whatever tenant occupies it next
        self.queue.clear_slot(src.shard, src.ctx);
        self.shards[dst.shard].planes[dst.ctx] = Some(plane);
        self.seed_slot(dst)?;
        if let Some(taken) = taken {
            self.queue.install(dst.shard, dst.ctx, taken);
        }
        // recorded faults describe the tenant's slot; the slot moved
        for fault in &mut self.faults {
            if fault.tenant == tenant {
                fault.shard = dst.shard;
                fault.ctx = dst.ctx;
            }
        }
        let usage = &mut self.usage[tenant.index()];
        usage.migrations += 1;
        usage.migration_bytes += ckpt.encoded_len();
        usage.migration_downtime_cycles += 1 + ckpt.pending.lanes;
        usage.migration_css_toggles += realign;
        Ok(dst)
    }

    /// Migrates **every** tenant off `shard` — the fault-evacuation /
    /// rebalancing primitive. Destinations are chosen per tenant by the
    /// same energy-aware scoring as admission, restricted to the other
    /// shards. All-or-nothing feasibility: if the rest of the pool cannot
    /// absorb every resident tenant, nothing moves and
    /// [`MigrateError::EvacuationBlocked`] reports the shortfall. Returns
    /// `(tenant, new placement)` per move, in source context order.
    pub fn evacuate_shard(
        &mut self,
        shard: usize,
    ) -> Result<Vec<(TenantId, Placement)>, ServiceError> {
        self.check_shard(shard)?;
        let tenants: Vec<TenantId> = self
            .registry
            .occupied_contexts(shard)
            .into_iter()
            .filter_map(|ctx| self.registry.occupant(shard, ctx))
            .collect();
        let free_elsewhere = self
            .registry
            .free_slots()
            .into_iter()
            .filter(|p| p.shard != shard)
            .count();
        if free_elsewhere < tenants.len() {
            return Err(MigrateError::EvacuationBlocked {
                tenants: tenants.len(),
                free_elsewhere,
            }
            .into());
        }
        let mut moved = Vec::with_capacity(tenants.len());
        for tenant in tenants {
            let src_ctx = self.registry.tenant(tenant)?.placement.ctx;
            let dst = best_slot(&self.registry, &self.matrix, Some(src_ctx), |p| {
                p.shard != shard
            })?
            .expect("feasibility prechecked: a free off-shard slot exists");
            moved.push((tenant, self.migrate_to_slot(tenant, dst)?));
        }
        Ok(moved)
    }

    /// One tenant's stream-register file (`reg:*` state carried between
    /// its passes). Empty for purely combinational tenants.
    pub fn register_file(&self, tenant: TenantId) -> Result<&RegisterFile, ServiceError> {
        self.registry.tenant(tenant)?; // validates the id
        Ok(&self.regs[tenant.index()])
    }

    /// Executes the pending batches of `active` contexts on one shard, in
    /// CSS schedule order — reordered for minimum broadcast toggles under
    /// [`OptimizeMode::Optimized`] — charging switch energy to the tenant
    /// switched in, alongside the *baseline* toggles the naive ascending
    /// order would have charged (so each bill carries what the optimizer
    /// saved; see [`mcfpga_cost::attribution`]).
    ///
    /// A slot's batch is removed from the queue only *after* its pass
    /// succeeds — a failed pass records a [`SlotFault`], keeps its requests
    /// queued, and moves on to the next context, so no issued [`RequestId`]
    /// is ever silently dropped and no slot blocks its neighbours. The
    /// `Err` branch is reserved for structural failures (a broken schedule
    /// domain or registry/plane invariant).
    fn run_shard(&mut self, shard_idx: usize, active: &[usize]) -> Result<(), ServiceError> {
        let naive = Schedule::active_sweep(self.params.contexts, active)?;
        // the counterfactual: per-context toggles of the naive ascending
        // walk from the broadcast's current position (each active context
        // appears exactly once in a sweep, so a map by context is sound)
        let start = self.shards[shard_idx].seq.current();
        let baseline: Vec<(usize, usize)> = naive
            .as_slice()
            .iter()
            .copied()
            .zip(self.matrix.step_costs(Some(start), naive.as_slice())?)
            .collect();
        let schedule =
            self.shards[shard_idx]
                .seq
                .plan_sweep_with(&naive, self.optimize, &self.matrix)?;
        for ctx in schedule.iter() {
            let Some(batch) = self.queue.slot(shard_idx, ctx) else {
                continue;
            };
            let tenant =
                self.registry
                    .occupant(shard_idx, ctx)
                    .ok_or(ServiceError::SlotNotProgrammed {
                        shard: shard_idx,
                        ctx,
                    })?;
            let shard = &mut self.shards[shard_idx];
            let plane = shard.planes[ctx]
                .clone()
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: shard_idx,
                    ctx,
                })?;
            // the CSS broadcast swaps the active plane; its toggles are
            // charged at switch time — the broadcast network spent that
            // energy whether or not the pass below resolves
            let toggles = shard.seq.step_to(ctx)?;
            self.usage[tenant.index()].css_toggles += toggles;
            self.usage[tenant.index()].css_toggles_baseline += baseline
                .iter()
                .find(|(c, _)| *c == ctx)
                .map_or(toggles, |(_, cost)| *cost);
            // stream registers: every bound `reg:*` input reads the
            // tenant's word from its previous pass (0 before the first) —
            // lane-aligned, so lane `l` of pass `p+1` consumes the state
            // lane `l` of pass `p` produced. A request that drove the name
            // explicitly wins (the batch entry resolves first), which is
            // how a caller seeds stream state by hand.
            let binds = plane.plane(ctx)?.input_binds();
            let tenant_regs = &self.regs[tenant.index()];
            let mut lane_inputs = batch.lane_inputs();
            for (_, name) in binds {
                if name.starts_with(REG_PREFIX) && !lane_inputs.iter().any(|(n, _)| n == name) {
                    lane_inputs.push((name.as_str(), tenant_regs.get(name).unwrap_or(0)));
                }
            }
            let scratch = shard.scratch.get_or_insert_with(|| plane.new_state());
            let outs = match plane.eval_batch_into(ctx, &lane_inputs, scratch) {
                Ok(outs) => outs,
                Err(e) => {
                    self.faults.push(SlotFault {
                        tenant,
                        shard: shard_idx,
                        ctx,
                        error: e.into(),
                    });
                    continue;
                }
            };
            let taken = self
                .queue
                .take(shard_idx, ctx)
                .expect("slot was non-empty and the pass just succeeded");
            self.usage[tenant.index()].passes += 1;
            // `reg:*` outputs are state, not answers: harvest them into the
            // register file; only the visible outputs demux into responses.
            // One Arc per visible name, shared by all the pass's responses —
            // demuxing a full 64-lane batch allocates no strings
            let tenant_regs = &mut self.regs[tenant.index()];
            let mut visible: Vec<(Arc<str>, u64)> = Vec::with_capacity(outs.len());
            for (name, word) in &outs {
                if name.starts_with(REG_PREFIX) {
                    tenant_regs.set(name, *word);
                } else {
                    visible.push((Arc::from(name.as_str()), *word));
                }
            }
            for (lane, (request, owner)) in taken.tickets.iter().enumerate() {
                self.ready.push(Response {
                    request: *request,
                    tenant: *owner,
                    outputs: visible
                        .iter()
                        .map(|(n, word)| (Arc::clone(n), (word >> lane) & 1 == 1))
                        .collect(),
                });
            }
            // hand the emptied buffers back to the slot (cleared, capacity
            // kept) so steady-state flushes re-allocate nothing
            self.queue.recycle(shard_idx, ctx, taken);
        }
        Ok(())
    }

    /// Raw usage counters of one tenant.
    pub fn usage(&self, tenant: TenantId) -> Result<TenantUsage, ServiceError> {
        self.registry.tenant(tenant)?; // validates the id
        Ok(self.usage[tenant.index()])
    }

    /// One tenant's usage billed in physical units.
    pub fn bill(&self, tenant: TenantId) -> Result<TenantBill, ServiceError> {
        Ok(bill(&self.usage(tenant)?, &self.tech))
    }

    /// Markdown billing table over every admitted tenant.
    #[must_use]
    pub fn billing_report(&self) -> String {
        let rows: Vec<(String, TenantUsage)> = self
            .registry
            .iter()
            .map(|(id, rec)| (rec.name.clone(), self.usage[id.index()]))
            .collect();
        render_billing(&rows, &self.tech)
    }

    /// The tenant registry (placements, digests, occupancy).
    #[must_use]
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// The compiled-plane cache (hit/miss counters).
    #[must_use]
    pub fn cache(&self) -> &PlaneCache {
        &self.cache
    }

    /// Requests parked in lane batches, not yet executed.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queue.pending_total()
    }

    /// Number of fabric shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared fabric geometry of every shard.
    #[must_use]
    pub fn params(&self) -> &FabricParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_fabric::netlist_ir::generators;
    use mcfpga_fabric::TileCoord;

    /// Submit-time validation makes undriven-input passes unreachable
    /// through the public API, so the fault path is exercised by swapping a
    /// tenant's compiled plane for one whose bound output can never
    /// resolve — the runtime-failure class [`SlotFault`] exists for.
    #[test]
    fn faulted_slot_keeps_requests_and_spares_other_tenants() {
        let params = FabricParams::default();
        let mut svc = ShardedService::new(1, params, TechParams::default()).unwrap();
        let wire = generators::wire_lanes(1).unwrap();
        let bad = svc.admit("bad", &wire).unwrap(); // ctx 0
        let good = svc.admit("good", &wire).unwrap(); // ctx 1

        // sabotage: a plane with an output bound but never driven
        let mut broken = Fabric::new(params).unwrap();
        broken
            .bind_output(TileCoord { x: 0, y: 0 }, 0, 0, "y")
            .unwrap();
        svc.shards[0].planes[0] = Some(Arc::new(
            CompiledFabric::compile_context(&broken, 0).unwrap(),
        ));

        // the broken plane binds no inputs, so any request passes validation
        svc.submit(bad, &[("in0", true)]).unwrap();
        let ok_req = svc.submit(good, &[("in0", true)]).unwrap();

        // the healthy tenant is served; the faulted batch stays queued
        let responses = svc.drain().unwrap();
        assert_eq!(responses.len(), 1, "bad slot must not block the good one");
        assert_eq!(responses[0].request, ok_req);
        let faults = svc.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].tenant, bad);
        assert_eq!((faults[0].shard, faults[0].ctx), (0, 0));
        assert!(matches!(faults[0].error, ServiceError::Fabric(_)));
        assert_eq!(svc.pending_requests(), 1, "failed pass drops no requests");
        assert_eq!(svc.usage(bad).unwrap().passes, 0, "no successful pass");

        // the switch *into* the failing context is still charged: the CSS
        // broadcast spent that energy whether or not the pass resolved
        let toggles_before = svc.usage(bad).unwrap().css_toggles;
        assert!(svc.drain().unwrap().is_empty());
        assert_eq!(svc.take_faults().len(), 1);
        assert!(
            svc.usage(bad).unwrap().css_toggles > toggles_before,
            "sequencer sat on ctx 1, so re-entering ctx 0 toggles lines"
        );

        // explicit recovery
        assert_eq!(svc.discard_pending(bad).unwrap(), 1);
        assert_eq!(svc.pending_requests(), 0);
        assert!(svc.drain().unwrap().is_empty());
        assert!(svc.take_faults().is_empty());
    }
}
