//! A deterministic scoped-thread fan-out over per-shard engines.
//!
//! [`ParallelExecutor::run`] applies one closure to every element of a
//! mutable slice, using `std::thread::scope` workers — no external
//! dependencies, no `unsafe`, no 'static bounds (the engines stay borrowed
//! from the service). Each element is processed by **exactly one** worker
//! and **sequentially within** that worker, and results come back in slice
//! order regardless of which thread finished first — so the only
//! nondeterminism threads could introduce (completion order) is erased
//! before the caller sees anything. Running with 1 thread, N threads, or
//! on a single-core machine produces byte-identical results.
//!
//! The slice is partitioned into contiguous chunks, one per worker
//! (`ceil(len / threads)` elements each). Static chunking keeps the design
//! safe-Rust-only (work stealing over a `&mut` slice needs `unsafe` or a
//! lock) and costs little here: the service's unit of work is a whole
//! shard sweep, and shards carry statistically similar load.

use std::num::NonZeroUsize;

/// Environment variable overriding the worker-thread count
/// (`MCFPGA_THREADS=1` forces the sequential path; unset or invalid
/// values fall back to the machine's available parallelism).
pub const THREADS_ENV: &str = "MCFPGA_THREADS";

/// A fixed-width scoped worker pool. Cheap to construct and `Copy` — the
/// "pool" is a thread count; workers are scoped per fan-out, which is
/// what lets them borrow the engines instead of requiring `'static` jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor of `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// An executor sized from the environment: [`THREADS_ENV`] when set to
    /// a positive integer, the machine's available parallelism otherwise.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            });
        ParallelExecutor::new(threads)
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every element of `items`, fanning out across up to
    /// [`threads`](Self::threads) scoped workers, and returns the results
    /// **in slice order**. `f` receives the element's index alongside the
    /// element. With one thread (or one element) no thread is spawned —
    /// the sequential path *is* the parallel path at width 1, not a
    /// separate code path to drift.
    ///
    /// # Panics
    /// Propagates a worker panic (the scope joins all workers first).
    pub fn run<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let chunk = n.div_ceil(workers);
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks_mut(chunk)
                .enumerate()
                .map(|(w, slice)| {
                    let base = w * chunk;
                    scope.spawn(move || {
                        slice
                            .iter_mut()
                            .enumerate()
                            .map(|(i, item)| (base + i, f(base + i, item)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                indexed.extend(handle.join().expect("executor worker panicked"));
            }
        });
        // chunks join in spawn order, so this is already sorted; keep the
        // sort as a structural guarantee rather than an emergent one
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor::from_env()
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ParallelExecutor>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_slice_order_at_any_width() {
        let baseline: Vec<usize> = (0..13).map(|i| i * 10).collect();
        for threads in [1, 2, 3, 4, 8, 32] {
            let exec = ParallelExecutor::new(threads);
            let mut items: Vec<usize> = (0..13).collect();
            let out = exec.run(&mut items, |i, item| {
                *item += 1; // mutation visible to the caller afterwards
                i * 10
            });
            assert_eq!(out, baseline, "threads={threads}");
            assert_eq!(items, (1..14).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_element_processed_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let mut items = vec![0u8; 100];
        let exec = ParallelExecutor::new(7);
        exec.run(&mut items, |_, item| {
            *item += 1;
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert!(
            items.iter().all(|&b| b == 1),
            "an element ran twice or never"
        );
    }

    #[test]
    fn zero_threads_clamps_and_empty_slice_is_fine() {
        let exec = ParallelExecutor::new(0);
        assert_eq!(exec.threads(), 1);
        let out: Vec<()> = ParallelExecutor::new(8).run(&mut Vec::<u8>::new(), |_, _| ());
        assert!(out.is_empty());
    }
}
