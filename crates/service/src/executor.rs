//! A persistent, work-stealing worker pool for the service's parallel
//! drain.
//!
//! [`ParallelExecutor::run_owned`] fans a batch of owned tasks out across
//! a pool of **persistent** worker threads — spawned lazily on the first
//! parallel run, fed over in-memory injector queues, parked on a condvar
//! between runs, and joined when the executor drops. A drain is therefore
//! an *enqueue + collect*, never a spawn + join: steady-state flushes
//! create no threads (the bench artifact's `pool_spawn_events` field pins
//! this).
//!
//! ## Work stealing
//!
//! Each worker owns one segment of the injector (`Mutex<VecDeque<Job>>`).
//! A task is pushed to the segment `affinity % workers` — the service
//! passes the task's shard index, so one shard's sweep steps land on one
//! segment and run in cache-friendly order when load is even. A worker
//! pops its own segment from the **front**; when that is empty it scans
//! the other segments round-robin and **steals from the back** — so a
//! skewed workload (one shard holding every tenant) spreads across all
//! workers instead of serializing on one. Steals and per-worker execution
//! counts are published as telemetry counters on the executor's
//! [`Registry`] (`executor_tasks_stolen`, the per-worker-sharded
//! `executor_tasks_executed`, …) so tests and the bench artifact can
//! assert the distribution rather than trusting it.
//!
//! All executor metrics are [`MetricClass::WallClock`]: how many tasks
//! go through the pool (versus the inline path) and who steals what
//! depend on the configured width and on scheduling, so none of them are
//! part of the deterministic snapshot the chaos replays compare.
//!
//! ## Determinism
//!
//! Results come back **in task order** regardless of which worker ran what
//! or in what order workers finished: every task is tagged with its index,
//! the collector places results by index, and the caller sees a plain
//! `Vec<R>` aligned with its input. Task execution itself must be
//! independent (the service's per-context sweep steps are — each touches
//! one slot's data, captured at plan time), and then the pool is
//! invisible: 1 worker, N workers, stolen or not, the output is
//! byte-identical.
//!
//! ## Panics
//!
//! A panicking task never hangs the collector: jobs run under
//! `catch_unwind` and always report back. The pool collects **all** of a
//! run's results first, then re-raises the first panic in task order —
//! workers stay parked and reusable, and no sibling task's work is lost
//! half-applied.
//!
//! ## Environment contract
//!
//! [`ParallelExecutor::from_env`] sizes the pool from [`THREADS_ENV`]
//! (`MCFPGA_THREADS`), resolved **once per process** and cached:
//!
//! * set to a positive integer `n` — the pool gets `n` workers
//!   ([`ThreadSource::Env`]);
//! * unset — the machine's available parallelism
//!   ([`ThreadSource::Machine`]);
//! * set but empty, zero, negative or non-numeric — the value is **not**
//!   silently swallowed: the fallback (machine parallelism) is used and
//!   the rejected raw value is preserved in
//!   [`ThreadSource::EnvInvalid`], surfaced through
//!   [`ParallelExecutor::config`].
//!
//! The width is a pure throughput knob; it never changes results.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use mcfpga_telemetry::{Counter, MetricClass, Registry};

/// Environment variable overriding the worker-thread count
/// (`MCFPGA_THREADS=1` forces the inline path). See the
/// [module docs](self) for the full contract; the resolution is cached
/// process-wide on first use.
pub const THREADS_ENV: &str = "MCFPGA_THREADS";

/// Counter: times a worker pool was spawned. Stays at 1 after warmup.
pub const SPAWN_EVENTS_METRIC: &str = "executor_spawn_events";
/// Counter: total worker threads ever spawned.
pub const WORKERS_SPAWNED_METRIC: &str = "executor_workers_spawned";
/// Counter: tasks submitted through [`ParallelExecutor::run_owned`]
/// (inline and pooled).
pub const TASKS_TOTAL_METRIC: &str = "executor_tasks_total";
/// Counter: pooled tasks a worker took from a segment other than its
/// own.
pub const TASKS_STOLEN_METRIC: &str = "executor_tasks_stolen";
/// Sharded counter (one cell per worker): pooled tasks executed per
/// worker — the work-distribution histogram.
pub const TASKS_EXECUTED_METRIC: &str = "executor_tasks_executed";

/// Where an executor's width came from — the provenance half of
/// [`ExecutorConfig`], so "why is the pool this wide?" is answerable from
/// a running service instead of by re-deriving the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadSource {
    /// Parsed from a valid [`THREADS_ENV`] value.
    Env,
    /// [`THREADS_ENV`] was set but not a positive integer; the machine's
    /// available parallelism was used instead. The rejected raw value is
    /// kept so the misconfiguration is diagnosable.
    EnvInvalid {
        /// The value that failed to parse.
        raw: String,
    },
    /// [`THREADS_ENV`] unset; the machine's available parallelism.
    Machine,
    /// Explicitly requested ([`ParallelExecutor::new`] /
    /// `ShardedService::set_threads`).
    Explicit,
}

/// An executor's resolved width and its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads a parallel run fans out across (≥ 1).
    pub threads: usize,
    /// How `threads` was decided.
    pub source: ThreadSource,
}

/// The executor's telemetry handles, registered under the
/// `executor_*` metric names on the registry handed to the
/// constructor. All wall-clock class: pool accounting depends on the
/// configured width and scheduling.
#[derive(Debug, Clone)]
struct ExecutorMetrics {
    spawn_events: Counter,
    workers_spawned: Counter,
    tasks_total: Counter,
    stolen: Counter,
    executed: Counter,
}

impl ExecutorMetrics {
    fn register(registry: &Registry, threads: usize) -> Self {
        ExecutorMetrics {
            spawn_events: registry.counter(SPAWN_EVENTS_METRIC, MetricClass::WallClock),
            workers_spawned: registry.counter(WORKERS_SPAWNED_METRIC, MetricClass::WallClock),
            tasks_total: registry.counter(TASKS_TOTAL_METRIC, MetricClass::WallClock),
            stolen: registry.counter(TASKS_STOLEN_METRIC, MetricClass::WallClock),
            executed: registry.counter_sharded(
                TASKS_EXECUTED_METRIC,
                MetricClass::WallClock,
                threads,
            ),
        }
    }
}

/// One unit of pooled work: consumes its payload, reports through its own
/// channel. The `usize` argument is the executing worker's index.
type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// State the producer and every worker share under one mutex: the
/// reservation counter and the shutdown flag. `queued` counts jobs pushed
/// but not yet *claimed* — a worker decrements it (a reservation) before
/// scanning the segments, so one notify never wakes two workers for one
/// job and a job pushed between scan and park is never lost.
struct PoolState {
    queued: usize,
    shutdown: bool,
}

/// Everything the workers share with the executor.
struct PoolShared {
    /// Injector segments, one per worker; `affinity % workers` selects
    /// the push target.
    queues: Vec<Mutex<VecDeque<Job>>>,
    state: Mutex<PoolState>,
    condvar: Condvar,
    /// Telemetry counter for jobs taken from a foreign segment.
    stolen: Counter,
    /// Per-worker-sharded telemetry counter for executed jobs.
    executed: Counter,
}

/// The persistent worker threads plus their shared injector. Dropping the
/// pool drains remaining jobs, then joins every worker.
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize, stolen: Counter, executed: Counter) -> Self {
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                queued: 0,
                shutdown: false,
            }),
            condvar: Condvar::new(),
            stolen,
            executed,
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mcfpga-worker-{w}"))
                    .spawn(move || Self::worker_loop(w, &shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueues one job on the segment `affinity % workers`. The push
    /// happens *before* the reservation counter rises, so a worker
    /// holding a reservation is guaranteed a job exists somewhere.
    fn push(&self, affinity: usize, job: Job) {
        let q = affinity % self.shared.queues.len();
        self.shared.queues[q]
            .lock()
            .expect("injector segment poisoned")
            .push_back(job);
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        st.queued += 1;
        drop(st);
        self.shared.condvar.notify_one();
    }

    fn worker_loop(w: usize, shared: &PoolShared) {
        loop {
            // park until a job is reserved for us (or shutdown, which
            // yields only once every queued job has been claimed)
            {
                let mut st = shared.state.lock().expect("pool state poisoned");
                loop {
                    if st.queued > 0 {
                        st.queued -= 1;
                        break;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = shared.condvar.wait(st).expect("pool state poisoned");
                }
            }
            // the reservation guarantees a job exists in *some* segment;
            // scan until found (a concurrent push/claim can make a single
            // scan miss, never starve — jobs only leave via reservations)
            let n = shared.queues.len();
            let (job, stolen) = 'find: loop {
                if let Some(job) = shared.queues[w]
                    .lock()
                    .expect("injector segment poisoned")
                    .pop_front()
                {
                    break 'find (job, false);
                }
                for off in 1..n {
                    let q = (w + off) % n;
                    if let Some(job) = shared.queues[q]
                        .lock()
                        .expect("injector segment poisoned")
                        .pop_back()
                    {
                        break 'find (job, true);
                    }
                }
                std::hint::spin_loop();
            };
            if stolen {
                shared.stolen.inc();
            }
            shared.executed.add_to(w, 1);
            job(w);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.shared.condvar.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The service's parallel runtime: a resolved width plus a lazily spawned
/// persistent [worker pool](self). See the [module docs](self).
pub struct ParallelExecutor {
    config: ExecutorConfig,
    pool: Option<WorkerPool>,
    registry: Registry,
    metrics: ExecutorMetrics,
    /// Defense-in-depth against re-entrant dispatch. `run_owned` takes
    /// `&mut self`, so re-entrancy is already rejected at compile time;
    /// this catches a future refactor that weakens the receiver.
    active: bool,
}

impl ParallelExecutor {
    /// An executor of `threads` workers (clamped to at least 1), source
    /// [`ThreadSource::Explicit`], publishing into its own private
    /// [`Registry`]. No thread is spawned here — the pool appears on the
    /// first run that can use it.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::new_on(threads, &Registry::new())
    }

    /// Like [`new`](ParallelExecutor::new), but publishing the
    /// `executor_*` metrics on `registry` — replacing (and zeroing) any
    /// previous executor's registrations there, which is exactly the
    /// reset `ShardedService::set_threads` wants.
    #[must_use]
    pub fn new_on(threads: usize, registry: &Registry) -> Self {
        Self::with_config(
            ExecutorConfig {
                threads: threads.max(1),
                source: ThreadSource::Explicit,
            },
            registry.clone(),
        )
    }

    /// An executor sized from the environment — see the
    /// [module docs](self) for the `MCFPGA_THREADS` contract. The
    /// variable is read and validated **once per process**; every later
    /// call reuses the cached resolution (so a mid-run `set_var` cannot
    /// make two services disagree about the machine's width).
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_env_on(&Registry::new())
    }

    /// Like [`from_env`](ParallelExecutor::from_env), but publishing the
    /// `executor_*` metrics on `registry`.
    #[must_use]
    pub fn from_env_on(registry: &Registry) -> Self {
        static RESOLVED: OnceLock<ExecutorConfig> = OnceLock::new();
        let config = RESOLVED
            .get_or_init(|| resolve(std::env::var(THREADS_ENV).ok().as_deref()))
            .clone();
        Self::with_config(config, registry.clone())
    }

    fn with_config(config: ExecutorConfig, registry: Registry) -> Self {
        let metrics = ExecutorMetrics::register(&registry, config.threads);
        ParallelExecutor {
            config,
            pool: None,
            registry,
            metrics,
            active: false,
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The resolved width and where it came from — including the rejected
    /// raw value when `MCFPGA_THREADS` was set but invalid.
    #[must_use]
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// The registry this executor publishes its `executor_*` counters
    /// on. Read pool accounting from here (e.g.
    /// `registry().counter_value(`[`TASKS_STOLEN_METRIC`]`)` or the
    /// per-worker cells of [`TASKS_EXECUTED_METRIC`]).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A clone that shares the configuration but publishes fresh zeroed
    /// `executor_*` metrics on `registry` and spawns its own pool on
    /// first parallel use.
    #[must_use]
    pub fn clone_on(&self, registry: &Registry) -> Self {
        Self::with_config(self.config.clone(), registry.clone())
    }

    /// Runs every `(affinity, task)` through `f` and returns the results
    /// **in task order**. With one configured worker or at most one task
    /// the whole batch runs inline on the caller's thread — the inline
    /// path and the pooled path execute the same `f` on the same data, so
    /// width-1 *is* the sequential execution, not an approximation of it.
    /// Otherwise tasks are enqueued on the persistent pool (spawned on
    /// first use) keyed by `affinity`, workers steal across segments when
    /// their own runs dry, and the call returns once every task has
    /// reported.
    ///
    /// # Panics
    /// Re-raises the first panicking task (in task order) — but only
    /// after **all** tasks of this run have finished, so no task is left
    /// mid-flight and the pool stays reusable.
    pub fn run_owned<T, R>(
        &mut self,
        tasks: Vec<(usize, T)>,
        f: Arc<dyn Fn(T) -> R + Send + Sync>,
    ) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
    {
        assert!(!self.active, "re-entrant ParallelExecutor dispatch");
        self.active = true;
        self.metrics.tasks_total.add(tasks.len() as u64);
        let out = if self.config.threads <= 1 || tasks.len() <= 1 {
            tasks.into_iter().map(|(_, task)| f(task)).collect()
        } else {
            self.run_pooled(tasks, f)
        };
        self.active = false;
        out
    }

    /// The pooled dispatch: enqueue every job, then collect exactly one
    /// report per job. Each job catches its own panic and **always**
    /// reports, so the collector cannot hang; panics re-raise only after
    /// the full collection.
    fn run_pooled<T, R>(
        &mut self,
        tasks: Vec<(usize, T)>,
        f: Arc<dyn Fn(T) -> R + Send + Sync>,
    ) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
    {
        if self.pool.is_none() {
            self.metrics.spawn_events.inc();
            self.metrics.workers_spawned.add(self.config.threads as u64);
            self.pool = Some(WorkerPool::spawn(
                self.config.threads,
                self.metrics.stolen.clone(),
                self.metrics.executed.clone(),
            ));
        }
        let pool = self.pool.as_ref().expect("pool just ensured above");
        let n = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        for (idx, (affinity, task)) in tasks.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            pool.push(
                affinity,
                Box::new(move |_worker| {
                    let result = catch_unwind(AssertUnwindSafe(|| f(task)));
                    // the receiver only disconnects if the collector
                    // itself died; nothing useful to do with the error
                    let _ = tx.send((idx, result));
                }),
            );
        }
        drop(tx);
        let mut slots: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, result) = rx
                .recv()
                .expect("a pool job vanished without reporting (worker died?)");
            debug_assert!(slots[idx].is_none(), "task {idx} reported twice");
            slots[idx] = Some(result);
        }
        let mut out = Vec::with_capacity(n);
        let mut first_panic = None;
        for slot in slots {
            match slot.expect("every task reports exactly once") {
                Ok(r) => out.push(r),
                Err(panic) => {
                    if first_panic.is_none() {
                        first_panic = Some(panic);
                    }
                }
            }
        }
        if let Some(panic) = first_panic {
            self.active = false;
            resume_unwind(panic);
        }
        out
    }

    /// A weak handle on the pool's shared state, for lifecycle tests:
    /// once the executor drops, a failed upgrade proves every worker
    /// (each holding a strong count) has exited.
    #[cfg(test)]
    fn pool_probe(&self) -> Option<std::sync::Weak<PoolShared>> {
        self.pool.as_ref().map(|p| Arc::downgrade(&p.shared))
    }
}

/// Pure resolution of a raw `MCFPGA_THREADS` value — split from the env
/// read so the contract is unit-testable without process-global state.
fn resolve(raw: Option<&str>) -> ExecutorConfig {
    let machine = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    match raw {
        None => ExecutorConfig {
            threads: machine(),
            source: ThreadSource::Machine,
        },
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => ExecutorConfig {
                threads: n,
                source: ThreadSource::Env,
            },
            _ => ExecutorConfig {
                threads: machine(),
                source: ThreadSource::EnvInvalid {
                    raw: raw.to_string(),
                },
            },
        },
    }
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor::from_env()
    }
}

/// Cloning shares the *configuration*, never the pool or the metrics:
/// the clone publishes fresh zeroed counters on its own private
/// registry and spawns its own pool on first parallel use. (A shared
/// pool would entangle two services' collectors; `ShardedService`'s
/// `Clone` relies on this isolation and re-homes the clone's metrics via
/// [`clone_on`](ParallelExecutor::clone_on).)
impl Clone for ParallelExecutor {
    fn clone(&self) -> Self {
        self.clone_on(&Registry::new())
    }
}

impl std::fmt::Debug for ParallelExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelExecutor")
            .field("config", &self.config)
            .field("pool_spawned", &self.pool.is_some())
            .field(
                "tasks_total",
                &self.registry.counter_value(TASKS_TOTAL_METRIC),
            )
            .field(
                "tasks_stolen",
                &self.registry.counter_value(TASKS_STOLEN_METRIC),
            )
            .finish()
    }
}

// the executor moves across threads inside `ShardedService` clones and
// test harnesses; a future non-Send field must fail the build
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ParallelExecutor>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn id_fn() -> Arc<dyn Fn(usize) -> usize + Send + Sync> {
        Arc::new(|x| x)
    }

    fn counter(exec: &ParallelExecutor, name: &str) -> u64 {
        exec.registry()
            .counter_value(name)
            .expect("executor metric registered")
    }

    #[test]
    fn results_come_back_in_task_order_at_any_width() {
        for threads in [1, 2, 3, 4, 8] {
            let mut exec = ParallelExecutor::new(threads);
            let tasks: Vec<(usize, usize)> = (0..23).map(|i| (i % 3, i)).collect();
            let out = exec.run_owned(tasks, Arc::new(|x: usize| x * 10));
            assert_eq!(
                out,
                (0..23).map(|i| i * 10).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_threads_clamps_and_empty_input_is_fine() {
        let mut exec = ParallelExecutor::new(0);
        assert_eq!(exec.threads(), 1);
        let out = exec.run_owned(Vec::new(), id_fn());
        assert!(out.is_empty());
    }

    /// The deterministic steal gate: 4 tasks, all pushed to worker 0's
    /// segment, each blocking on a 4-way barrier — the run can only
    /// complete if 4 distinct workers each take exactly one task, which
    /// forces workers 1–3 to steal. No timing assumptions: this holds on
    /// a 1-core machine.
    #[test]
    fn skewed_affinity_forces_stealing() {
        let mut exec = ParallelExecutor::new(4);
        let barrier = Arc::new(Barrier::new(4));
        let tasks: Vec<(usize, usize)> = (0..4).map(|i| (0, i)).collect();
        let b = Arc::clone(&barrier);
        let out = exec.run_owned(
            tasks,
            Arc::new(move |i: usize| {
                b.wait();
                i
            }),
        );
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(counter(&exec, TASKS_TOTAL_METRIC), 4);
        assert_eq!(
            counter(&exec, TASKS_STOLEN_METRIC),
            3,
            "3 of 4 same-segment tasks must be stolen"
        );
        assert_eq!(
            exec.registry().counter_cells(TASKS_EXECUTED_METRIC),
            Some(vec![1, 1, 1, 1])
        );
    }

    /// The deterministic balance gate: 16 tasks on one segment, executed
    /// in 4-way barrier waves — every wave occupies all 4 workers, so the
    /// histogram must come out exactly even and 12 tasks stolen.
    #[test]
    fn barrier_waves_balance_a_fully_skewed_workload() {
        let mut exec = ParallelExecutor::new(4);
        let barrier = Arc::new(Barrier::new(4));
        let executed = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<(usize, usize)> = (0..16).map(|i| (0, i)).collect();
        let (b, e) = (Arc::clone(&barrier), Arc::clone(&executed));
        let out = exec.run_owned(
            tasks,
            Arc::new(move |i: usize| {
                b.wait();
                e.fetch_add(1, Ordering::Relaxed);
                i
            }),
        );
        assert_eq!(out, (0..16).collect::<Vec<_>>(), "exactly-once, in order");
        assert_eq!(executed.load(Ordering::Relaxed), 16);
        assert_eq!(
            exec.registry().counter_cells(TASKS_EXECUTED_METRIC),
            Some(vec![4, 4, 4, 4]),
            "balanced"
        );
        assert_eq!(counter(&exec, TASKS_STOLEN_METRIC), 12);
    }

    /// Pool lifecycle: 1,000 runs spawn exactly one pool (no thread
    /// leak — worker creation only ever happens inside a spawn event).
    #[test]
    fn a_thousand_runs_reuse_one_pool() {
        let mut exec = ParallelExecutor::new(3);
        for round in 0..1_000 {
            let tasks: Vec<(usize, usize)> = (0..4).map(|i| (i, round + i)).collect();
            let out = exec.run_owned(tasks, id_fn());
            assert_eq!(out, (round..round + 4).collect::<Vec<_>>());
        }
        assert_eq!(
            counter(&exec, SPAWN_EVENTS_METRIC),
            1,
            "drains must reuse the pool"
        );
        assert_eq!(counter(&exec, WORKERS_SPAWNED_METRIC), 3);
        assert_eq!(counter(&exec, TASKS_TOTAL_METRIC), 4_000);
        assert_eq!(counter(&exec, TASKS_EXECUTED_METRIC), 4_000);
    }

    /// Dropping the executor joins every worker: the workers are the only
    /// strong holders of the shared state once the pool struct drops, so
    /// a dead weak handle proves they all exited.
    #[test]
    fn drop_joins_all_workers() {
        let mut exec = ParallelExecutor::new(4);
        let tasks: Vec<(usize, usize)> = (0..8).map(|i| (i, i)).collect();
        exec.run_owned(tasks, id_fn());
        let probe = exec.pool_probe().expect("pool spawned");
        drop(exec);
        assert!(
            probe.upgrade().is_none(),
            "a worker outlived the executor drop"
        );
    }

    /// A panicking task is re-raised — after the whole run finished, so
    /// the pool survives and the next run works.
    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let mut exec = ParallelExecutor::new(2);
        let tasks: Vec<(usize, usize)> = (0..4).map(|i| (i, i)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.run_owned(
                tasks,
                Arc::new(|i: usize| {
                    assert!(i != 2, "task 2 dies");
                    i
                }),
            )
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // the pool is still usable
        let out = exec.run_owned((0..4).map(|i| (i, i)).collect(), id_fn());
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(
            counter(&exec, SPAWN_EVENTS_METRIC),
            1,
            "no respawn after a panic"
        );
    }

    #[test]
    fn inline_path_runs_on_caller_thread_without_a_pool() {
        let mut exec = ParallelExecutor::new(1);
        let caller = std::thread::current().id();
        let out = exec.run_owned(
            (0..5).map(|i| (i, i)).collect(),
            Arc::new(move |i: usize| {
                assert_eq!(std::thread::current().id(), caller);
                i
            }),
        );
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            counter(&exec, SPAWN_EVENTS_METRIC),
            0,
            "width 1 never spawns"
        );
        // a single task also stays inline at any width
        let mut wide = ParallelExecutor::new(8);
        wide.run_owned(vec![(0, 7usize)], id_fn());
        assert_eq!(counter(&wide, SPAWN_EVENTS_METRIC), 0);
    }

    #[test]
    fn clone_shares_config_but_not_pool_or_metrics() {
        let mut exec = ParallelExecutor::new(2);
        exec.run_owned((0..4).map(|i| (i, i)).collect(), id_fn());
        assert_eq!(counter(&exec, SPAWN_EVENTS_METRIC), 1);
        let clone = exec.clone();
        assert_eq!(clone.config(), exec.config());
        assert_eq!(counter(&clone, SPAWN_EVENTS_METRIC), 0);
        assert_eq!(counter(&clone, TASKS_TOTAL_METRIC), 0);
    }

    /// `clone_on` re-homes the clone's metrics, replacing (and zeroing)
    /// any executor metrics previously registered on that registry.
    #[test]
    fn clone_on_replaces_metrics_on_the_target_registry() {
        let registry = Registry::new();
        let mut first = ParallelExecutor::new_on(2, &registry);
        first.run_owned((0..4).map(|i| (i, i)).collect(), id_fn());
        assert_eq!(registry.counter_value(TASKS_TOTAL_METRIC), Some(4));
        let _second = first.clone_on(&registry);
        assert_eq!(
            registry.counter_value(TASKS_TOTAL_METRIC),
            Some(0),
            "re-registration zeroes the registry's view"
        );
    }

    #[test]
    fn env_resolution_contract() {
        let explicit = ParallelExecutor::new(5);
        assert_eq!(
            *explicit.config(),
            ExecutorConfig {
                threads: 5,
                source: ThreadSource::Explicit
            }
        );
        assert_eq!(
            resolve(Some("8")),
            ExecutorConfig {
                threads: 8,
                source: ThreadSource::Env
            }
        );
        assert_eq!(
            resolve(Some(" 16 ")).threads,
            16,
            "whitespace-tolerant parse"
        );
        assert_eq!(resolve(None).source, ThreadSource::Machine);
        for bad in ["0", "-3", "lots", "", "4.5"] {
            let cfg = resolve(Some(bad));
            assert_eq!(
                cfg.source,
                ThreadSource::EnvInvalid {
                    raw: bad.to_string()
                },
                "invalid value {bad:?} must be surfaced, not swallowed"
            );
            assert!(cfg.threads >= 1);
        }
    }
}
