//! Tenant admission: slot assignment and the compiled-plane cache.
//!
//! The registry is deliberately *pure bookkeeping* — it never touches a
//! fabric. [`crate::service::ShardedService`] asks it to
//! [`reserve`](TenantRegistry::reserve) a slot, performs the routing and
//! compilation against the chosen shard, and only then
//! [`commit`](TenantRegistry::commit)s the tenant, so a failed admission
//! never burns a slot.

use crate::ServiceError;
use mcfpga_fabric::{CompiledFabric, FabricError};
use std::collections::HashMap;
use std::sync::Arc;

/// Opaque handle of an admitted tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(usize);

impl TenantId {
    /// The dense index of this tenant (admission order, starting at 0).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Where a tenant lives: one context slot on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Shard index.
    pub shard: usize,
    /// Context slot within the shard.
    pub ctx: usize,
}

/// One admitted tenant's record.
#[derive(Debug, Clone)]
pub struct TenantRecord {
    /// Human-readable tenant name.
    pub name: String,
    /// The slot the tenant occupies.
    pub placement: Placement,
    /// Configuration digest of the tenant's routed context plane.
    pub digest: u64,
    /// Does the tenant's routed fabric configuration still live in its
    /// placement shard? True from admission (the netlist was routed there);
    /// false once the tenant migrates — from then on its compiled plane is
    /// recoverable only through the digest-keyed plane cache, never by
    /// recompiling from a fabric.
    pub resident: bool,
    /// Has the tenant been retired ([`TenantRegistry::retire`])? A
    /// retired record keeps its id slot (ids are dense admission indices
    /// and are never reissued) but no longer occupies a context slot and
    /// is invisible to lookups and iteration.
    pub retired: bool,
}

/// Maps tenants to `(shard, context)` slots, round-robin across shards.
///
/// Successive admissions land on successive shards (tenant 0 → shard 0,
/// tenant 1 → shard 1, …), each taking the lowest free context slot of its
/// shard, so load spreads across shards before contexts fill up. When the
/// preferred shard is full the next shard with a free slot is used.
#[derive(Debug, Clone)]
pub struct TenantRegistry {
    shards: usize,
    contexts: usize,
    records: Vec<TenantRecord>,
    slots: Vec<Vec<Option<TenantId>>>,
    cursor: usize,
}

impl TenantRegistry {
    /// A registry for `shards` shards of `contexts` context slots each.
    pub fn new(shards: usize, contexts: usize) -> Result<Self, ServiceError> {
        if shards == 0 || contexts == 0 {
            return Err(ServiceError::BadConfig(format!(
                "{shards} shards × {contexts} contexts"
            )));
        }
        Ok(TenantRegistry {
            shards,
            contexts,
            records: Vec::new(),
            slots: vec![vec![None; contexts]; shards],
            cursor: 0,
        })
    }

    /// The slot the *next* admission will occupy, without claiming it.
    pub fn reserve(&self) -> Result<Placement, ServiceError> {
        for probe in 0..self.shards {
            let shard = (self.cursor + probe) % self.shards;
            if let Some(ctx) = self.slots[shard].iter().position(Option::is_none) {
                return Ok(Placement { shard, ctx });
            }
        }
        Err(ServiceError::CapacityExhausted {
            shards: self.shards,
            contexts: self.contexts,
        })
    }

    /// Claims the reserved slot for a routed, compiled tenant.
    pub fn commit(&mut self, name: &str, placement: Placement, digest: u64) -> TenantId {
        self.commit_with_residency(name, placement, digest, true)
    }

    /// [`commit`](Self::commit) for a tenant restored from a checkpoint:
    /// its compiled plane came from the cache, not from routing into this
    /// shard's fabric, so the record starts non-resident.
    pub fn commit_restored(&mut self, name: &str, placement: Placement, digest: u64) -> TenantId {
        self.commit_with_residency(name, placement, digest, false)
    }

    fn commit_with_residency(
        &mut self,
        name: &str,
        placement: Placement,
        digest: u64,
        resident: bool,
    ) -> TenantId {
        let id = TenantId(self.records.len());
        self.records.push(TenantRecord {
            name: name.to_string(),
            placement,
            digest,
            resident,
            retired: false,
        });
        self.slots[placement.shard][placement.ctx] = Some(id);
        self.cursor = (placement.shard + 1) % self.shards;
        id
    }

    /// The lowest free context slot of `shard`, without claiming it —
    /// the cluster router's placement primitive (it spreads admissions
    /// across shards of *different nodes* itself, then pins the shard).
    pub fn reserve_on(&self, shard: usize) -> Result<Placement, ServiceError> {
        if shard >= self.shards {
            return Err(ServiceError::NoSuchShard {
                shard,
                shards: self.shards,
            });
        }
        self.slots[shard]
            .iter()
            .position(Option::is_none)
            .map(|ctx| Placement { shard, ctx })
            .ok_or(ServiceError::CapacityExhausted {
                shards: self.shards,
                contexts: self.contexts,
            })
    }

    /// Permanently removes a tenant from the slot grid — the end of a
    /// cross-node migration (the tenant lives on elsewhere under a new
    /// id). Its context slot frees immediately; its record stays (ids
    /// are dense admission indices) but reads as unknown from then on.
    pub fn retire(&mut self, id: TenantId) -> Result<Placement, ServiceError> {
        let placement = self.tenant(id)?.placement;
        self.slots[placement.shard][placement.ctx] = None;
        self.records[id.0].retired = true;
        Ok(placement)
    }

    /// Moves an admitted tenant to a free slot (live migration). The old
    /// slot frees, the record's placement updates, and the tenant stops
    /// being fabric-resident (its routed configuration does not follow —
    /// only the compiled plane does, through the cache).
    pub fn relocate(&mut self, id: TenantId, to: Placement) -> Result<(), ServiceError> {
        let from = self.tenant(id)?.placement;
        if to.shard >= self.shards || to.ctx >= self.contexts {
            return Err(ServiceError::BadConfig(format!(
                "relocation target (shard {}, ctx {}) outside the {}×{} slot grid",
                to.shard, to.ctx, self.shards, self.contexts
            )));
        }
        if self.occupant(to.shard, to.ctx).is_some() {
            return Err(ServiceError::BadConfig(format!(
                "relocation target (shard {}, ctx {}) is occupied",
                to.shard, to.ctx
            )));
        }
        self.slots[from.shard][from.ctx] = None;
        self.slots[to.shard][to.ctx] = Some(id);
        let record = &mut self.records[id.0];
        record.placement = to;
        record.resident = false;
        Ok(())
    }

    /// The record of an admitted tenant. Retired tenants read as unknown:
    /// their slots are freed and their engine state is gone, so letting a
    /// stale id resolve would hand out another tenant's slot.
    pub fn tenant(&self, id: TenantId) -> Result<&TenantRecord, ServiceError> {
        self.records
            .get(id.0)
            .filter(|r| !r.retired)
            .ok_or(ServiceError::UnknownTenant(id.0))
    }

    /// The tenant occupying a slot, if any.
    #[must_use]
    pub fn occupant(&self, shard: usize, ctx: usize) -> Option<TenantId> {
        *self.slots.get(shard)?.get(ctx)?
    }

    /// Every currently free slot, shard-major then context-ascending —
    /// the candidate set an energy-aware placement policy scores.
    #[must_use]
    pub fn free_slots(&self) -> Vec<Placement> {
        self.slots
            .iter()
            .enumerate()
            .flat_map(|(shard, ctxs)| {
                ctxs.iter()
                    .enumerate()
                    .filter(|(_, slot)| slot.is_none())
                    .map(move |(ctx, _)| Placement { shard, ctx })
            })
            .collect()
    }

    /// Context slots of `shard` that currently host a tenant, ascending —
    /// the set an energy-aware placement sweeps when every tenant is busy.
    #[must_use]
    pub fn occupied_contexts(&self, shard: usize) -> Vec<usize> {
        self.slots.get(shard).map_or_else(Vec::new, |ctxs| {
            ctxs.iter()
                .enumerate()
                .filter(|(_, slot)| slot.is_some())
                .map(|(ctx, _)| ctx)
                .collect()
        })
    }

    /// Number of admitted, non-retired tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.iter().filter(|r| !r.retired).count()
    }

    /// Is the registry empty (no live tenants)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity (`shards × contexts`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards * self.contexts
    }

    /// All live (non-retired) tenants in admission order.
    pub fn iter(&self) -> impl Iterator<Item = (TenantId, &TenantRecord)> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.retired)
            .map(|(i, r)| (TenantId(i), r))
    }
}

/// Digest-keyed cache of compiled context planes.
///
/// The key is [`mcfpga_fabric::Fabric::context_digest`], which covers
/// exactly the state [`CompiledFabric::compile_context`] reads (geometry,
/// the context's LUT tables, switch-block rows and IO bindings) — so a hit
/// is always safe to reuse, across shards and across re-admissions of the
/// same bitstream.
#[derive(Debug, Clone, Default)]
pub struct PlaneCache {
    planes: HashMap<u64, Arc<CompiledFabric>>,
    hits: usize,
    misses: usize,
}

impl PlaneCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlaneCache::default()
    }

    /// Returns the cached plane for `digest`, or compiles and caches it.
    pub fn get_or_compile(
        &mut self,
        digest: u64,
        compile: impl FnOnce() -> Result<CompiledFabric, FabricError>,
    ) -> Result<Arc<CompiledFabric>, ServiceError> {
        if let Some(plane) = self.planes.get(&digest) {
            self.hits += 1;
            return Ok(Arc::clone(plane));
        }
        let plane = Arc::new(compile()?);
        self.misses += 1;
        self.planes.insert(digest, Arc::clone(&plane));
        Ok(plane)
    }

    /// The cached plane for `digest`, if present, without compiling —
    /// the restore path's lookup (a migration ships digests, not
    /// bitstreams, so a miss here is [`ServiceError::Migrate`] with
    /// `PlaneUnavailable`, never a recompile). Counts as a hit.
    pub fn get(&mut self, digest: u64) -> Option<Arc<CompiledFabric>> {
        let plane = self.planes.get(&digest).map(Arc::clone);
        if plane.is_some() {
            self.hits += 1;
        }
        plane
    }

    /// The cached plane for `digest` without touching the hit/miss
    /// counters — the cluster's plane-*export* lookup (shipping a plane
    /// to a peer node is not a local cache event).
    #[must_use]
    pub fn peek(&self, digest: u64) -> Option<Arc<CompiledFabric>> {
        self.planes.get(&digest).map(Arc::clone)
    }

    /// Is a plane cached under `digest`?
    #[must_use]
    pub fn contains(&self, digest: u64) -> bool {
        self.planes.contains_key(&digest)
    }

    /// Caches `plane` under `digest` — the plane-*import* half of
    /// cross-node shipping (the exporter vouches for the digest; it was
    /// computed by [`mcfpga_fabric::Fabric::context_digest`] at the
    /// plane's original admission). Overwrites any previous entry, which
    /// is safe because equal digests mean equal configurations.
    pub fn insert(&mut self, digest: u64, plane: Arc<CompiledFabric>) {
        self.planes.insert(digest, plane);
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses (= compilations performed).
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct planes cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// Is the cache empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_across_shards_first() {
        let mut reg = TenantRegistry::new(2, 2).unwrap();
        let mut placements = Vec::new();
        for i in 0..4 {
            let p = reg.reserve().unwrap();
            reg.commit(&format!("t{i}"), p, i as u64);
            placements.push((p.shard, p.ctx));
        }
        assert_eq!(placements, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert!(matches!(
            reg.reserve(),
            Err(ServiceError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn reserve_without_commit_burns_nothing() {
        let reg = TenantRegistry::new(2, 4).unwrap();
        assert_eq!(reg.reserve().unwrap(), reg.reserve().unwrap());
        assert!(reg.is_empty());
    }

    #[test]
    fn occupant_and_lookup() {
        let mut reg = TenantRegistry::new(1, 4).unwrap();
        let p = reg.reserve().unwrap();
        let id = reg.commit("alpha", p, 42);
        assert_eq!(reg.occupant(0, 0), Some(id));
        assert_eq!(reg.occupant(0, 1), None);
        assert_eq!(reg.tenant(id).unwrap().name, "alpha");
        assert_eq!(reg.tenant(id).unwrap().digest, 42);
        assert!(matches!(
            reg.tenant(TenantId(9)),
            Err(ServiceError::UnknownTenant(9))
        ));
    }

    #[test]
    fn relocate_moves_slot_and_clears_residency() {
        let mut reg = TenantRegistry::new(2, 2).unwrap();
        let p = reg.reserve().unwrap();
        let id = reg.commit("mover", p, 7);
        assert!(reg.tenant(id).unwrap().resident);
        let to = Placement { shard: 1, ctx: 1 };
        reg.relocate(id, to).unwrap();
        assert_eq!(reg.occupant(0, 0), None, "old slot freed");
        assert_eq!(reg.occupant(1, 1), Some(id));
        let rec = reg.tenant(id).unwrap();
        assert_eq!(rec.placement, to);
        assert!(!rec.resident, "routed config did not follow the tenant");
        assert_eq!(rec.digest, 7, "digest travels with the record");
        // occupied and out-of-range targets refuse
        let other = reg.commit("other", Placement { shard: 0, ctx: 0 }, 9);
        assert!(reg.relocate(other, to).is_err());
        assert!(reg.relocate(other, Placement { shard: 5, ctx: 0 }).is_err());
        assert_eq!(reg.tenant(other).unwrap().placement.shard, 0, "unchanged");
    }

    #[test]
    fn retire_frees_slot_and_hides_record() {
        let mut reg = TenantRegistry::new(2, 2).unwrap();
        let p = reg.reserve().unwrap();
        let id = reg.commit("leaver", p, 1);
        let q = reg.reserve().unwrap();
        let stay = reg.commit("stayer", q, 2);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.retire(id).unwrap(), p);
        assert_eq!(reg.occupant(p.shard, p.ctx), None, "slot freed");
        assert!(matches!(
            reg.tenant(id),
            Err(ServiceError::UnknownTenant(_))
        ));
        assert!(reg.retire(id).is_err(), "double retire refused");
        assert_eq!(reg.len(), 1);
        let live: Vec<_> = reg.iter().map(|(t, _)| t).collect();
        assert_eq!(live, vec![stay]);
        // the freed slot is reusable and the id is never reissued
        let r = reg.reserve_on(p.shard).unwrap();
        assert_eq!(r, p);
        let fresh = reg.commit("reuse", r, 3);
        assert!(fresh.index() > stay.index());
    }

    #[test]
    fn reserve_on_pins_the_shard() {
        let mut reg = TenantRegistry::new(2, 2).unwrap();
        assert_eq!(reg.reserve_on(1).unwrap(), Placement { shard: 1, ctx: 0 });
        let p = reg.reserve_on(1).unwrap();
        reg.commit("a", p, 0);
        assert_eq!(reg.reserve_on(1).unwrap(), Placement { shard: 1, ctx: 1 });
        reg.commit("b", reg.reserve_on(1).unwrap(), 1);
        assert!(matches!(
            reg.reserve_on(1),
            Err(ServiceError::CapacityExhausted { .. })
        ));
        assert!(matches!(
            reg.reserve_on(7),
            Err(ServiceError::NoSuchShard {
                shard: 7,
                shards: 2
            })
        ));
    }

    #[test]
    fn zero_sized_registry_rejected() {
        assert!(TenantRegistry::new(0, 4).is_err());
        assert!(TenantRegistry::new(4, 0).is_err());
    }
}
