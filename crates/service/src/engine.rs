//! The per-shard execution engine.
//!
//! A [`ShardEngine`] owns **everything one fabric shard needs to execute a
//! sweep without touching another shard**: its routed [`Fabric`], the
//! per-context compiled planes (Arc-shared through the coordinator's plane
//! cache — installing a plane clones a pointer, never a plane), its own
//! [`ContextSequencer`] (CSS broadcast position is per-shard physical
//! state), its partition of the service's batch queue, and the usage
//! counters + stream-register files of the tenants placed on it.
//!
//! A sweep is split into three phases so its only parallel part is pure:
//!
//! 1. **Plan** (`plan_sweep`), sequential on
//!    the coordinator: the CSS schedule is computed, the broadcast steps
//!    through it (switch toggles are charged here — the broadcast spends
//!    that energy whether or not the pass later resolves), and each active
//!    slot becomes one owned `PlannedStep` carrying its compiled-plane
//!    `Arc`, input lane chunks (queued requests plus the tenant's `reg:*`
//!    stream state) and its `(shard, sweep-position)` merge key.
//! 2. **Eval** (`eval_step`), the only concurrent phase: a pure
//!    function from a `PlannedStep` to output lane chunks, safe to run on
//!    any worker in any order — steps share nothing but immutable `Arc`s
//!    and a per-thread scratch.
//! 3. **Apply** (`apply_step`), sequential on
//!    the coordinator **in merge-key order** (shard, then sweep
//!    position): consumes the slot's batch on success, harvests `reg:*`
//!    chunks, demuxes responses, records a [`crate::service::SlotFault`]
//!    on failure (requests stay queued). Thread completion order never
//!    reaches this phase, so output is bit-for-bit identical at every
//!    worker count and lane width.
//!
//! Tenant mobility across engines is an explicit two-step handoff —
//! `expel` on the source, then `adopt` on the destination (both
//! crate-internal; the coordinator's migration ops drive them) — so
//! ownership of a
//! tenant's plane, queued lanes, registers and usage moves atomically from
//! one engine to another (the coordinator sequences the two calls; they
//! work unchanged when source and destination are the same engine).

use crate::batch::{BatchQueue, RequestId, RequestIdSource, Response, TakenBatch};
use crate::registry::TenantId;
use crate::service::SlotFault;
use crate::ServiceError;
use mcfpga_cost::attribution::TenantUsage;
use mcfpga_css::optimize::{CostMatrix, OptimizeMode};
use mcfpga_css::Schedule;
use mcfpga_fabric::compiled::{
    chunk_bit, BoundPlan, CompiledState, EvalStats, LaneBatch, LaneChunk, PushRefusal, DIRTY_ALL,
    LANE_WORDS,
};
use mcfpga_fabric::context::ContextSequencer;
use mcfpga_fabric::{CompiledFabric, Fabric, FabricParams, RegisterFile};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Prefix of signal names that are *stream registers*: outputs so named
/// are captured into the tenant's [`RegisterFile`] after each pass and
/// re-driven as inputs on its next pass (lane-aligned), instead of being
/// returned in responses. Re-exported from the fabric crate, which owns
/// the convention (`fabric::temporal` uses it for values crossing
/// context-switch boundaries).
pub(crate) use mcfpga_fabric::compiled::REG_PREFIX;

/// Per-tenant state an engine keeps for each tenant placed on it: the
/// usage counters billing reads and the stream-register file carried
/// between the tenant's passes. Moves wholesale in a migration handoff.
#[derive(Debug, Clone, Default)]
pub(crate) struct TenantState {
    /// Accumulated usage counters (requests, passes, toggles, migrations).
    pub usage: TenantUsage,
    /// `reg:*` stream state (lane words from the tenant's previous pass).
    pub regs: RegisterFile,
}

/// Everything a tenant hands from one engine to another in a migration:
/// produced by [`ShardEngine::expel`], consumed by
/// [`ShardEngine::adopt`].
#[derive(Debug)]
pub(crate) struct TenantHandoff {
    /// Usage + registers, moved (the source engine forgets the tenant).
    pub state: TenantState,
    /// The tenant's queued-but-unexecuted requests, original ids intact.
    pub batch: Option<TakenBatch>,
}

/// One per-context sweep task, planned sequentially and evaluated (maybe
/// concurrently, maybe stolen onto a different worker) by [`eval_step`].
/// Owns everything its evaluation needs — plane `Arc`, prebound plan,
/// dense input chunks, occupied word count — so the worker borrows
/// nothing from the engine: the engine's queue still holds the slot's
/// batch, which is consumed only at apply time on success, and the
/// `(shard, pos)` pair is the deterministic merge key the coordinator
/// orders applies by.
#[derive(Debug, Clone)]
pub(crate) struct PlannedStep {
    /// Shard of the slot (first half of the merge key, and the pool
    /// affinity hint).
    pub shard: usize,
    /// Position within the shard's planned sweep (second half of the
    /// merge key).
    pub pos: usize,
    /// The context slot to evaluate.
    pub ctx: usize,
    /// The slot's occupant.
    pub tenant: TenantId,
    /// Occupied 64-lane words ([`LaneBatch::words`]) — sparse batches pay
    /// for only the words they fill.
    pub words: usize,
    /// The slot's compiled plane (shared, immutable).
    pub plane: Arc<CompiledFabric>,
    /// The slot's prebound IO plan (shared, immutable). `None` only when
    /// binding failed at install time — evaluation then reproduces the
    /// plane-access error.
    pub bound: Option<Arc<BoundPlan>>,
    /// Dense input chunks, parallel to the bound plan's inputs: queued
    /// request lanes plus the tenant's `reg:*` stream state, captured at
    /// plan time.
    pub chunks: Vec<LaneChunk>,
    /// Dirty mask over the bound inputs vs the slot's previous sweep
    /// ([`DIRTY_ALL`] when no valid cached sweep exists).
    pub dirty: u64,
    /// A bound non-register input the batch union lacked (possible only
    /// on a slot installed without seeding): evaluation must fail with
    /// the interpreter's exact undriven-input error.
    pub missing: Option<Arc<str>>,
    /// The slot's persistent evaluation state (kernel slots only): moved
    /// out of the slot cache at plan time, returned to it at apply time —
    /// the arena the dirty-cone path reuses values from.
    pub state: Option<CompiledState>,
}

/// What one evaluated step hands to the apply phase.
#[derive(Debug)]
pub(crate) struct EvalOutcome {
    /// Output chunks, parallel to the bound plan's outputs.
    pub outs: Vec<LaneChunk>,
    /// Deterministic op accounting for the pass.
    pub stats: EvalStats,
}

thread_local! {
    /// Per-thread evaluation scratch for steps without a persistent slot
    /// state (non-kernel planes), reused across steps: pool workers and
    /// the coordinator thread each keep one, so steady-state sweeps
    /// re-allocate no arenas. `eval_bound_into` rebuilds it when a
    /// plane's resource layout differs from the scratch's.
    static EVAL_SCRATCH: RefCell<Option<CompiledState>> = const { RefCell::new(None) };
}

/// Evaluates one planned step — the **pure** phase of a sweep, safe on
/// any thread: reads only the step's own data (and a thread-local
/// scratch), mutates no engine state beyond the step's own carried
/// arena. An `Err` here is the *pass* failing;
/// [`ShardEngine::apply_step`] turns it into a [`SlotFault`] with the
/// requests left queued.
pub(crate) fn eval_step(step: &mut PlannedStep) -> Result<EvalOutcome, ServiceError> {
    let Some(bound) = step.bound.clone() else {
        // binding failed at install: reproduce the plane-access error the
        // name-keyed path would have raised
        return match step.plane.plane(step.ctx) {
            Err(e) => Err(e.into()),
            Ok(_) => Err(ServiceError::SlotNotProgrammed {
                shard: step.shard,
                ctx: step.ctx,
            }),
        };
    };
    if let Some(name) = &step.missing {
        return Err(
            mcfpga_fabric::FabricError::Unresolved(format!("input '{name}' not driven")).into(),
        );
    }
    let mut outs = Vec::with_capacity(bound.outputs().len());
    let stats = if let Some(state) = step.state.as_mut() {
        step.plane.eval_bound_into(
            &bound,
            &step.chunks,
            step.words,
            step.dirty,
            state,
            &mut outs,
        )?
    } else if step.plane.has_kernel(bound.ctx()) {
        // first sweep of a kernel slot: allocate the arena that will
        // persist in the slot cache from here on
        let mut st = step.plane.new_state();
        let stats = step.plane.eval_bound_into(
            &bound,
            &step.chunks,
            step.words,
            DIRTY_ALL,
            &mut st,
            &mut outs,
        )?;
        step.state = Some(st);
        stats
    } else {
        EVAL_SCRATCH.with(|cell| {
            let mut slot = cell.borrow_mut();
            let scratch = slot.get_or_insert_with(|| step.plane.new_state());
            step.plane.eval_bound_into(
                &bound,
                &step.chunks,
                step.words,
                DIRTY_ALL,
                scratch,
                &mut outs,
            )
        })?
    };
    Ok(EvalOutcome { outs, stats })
}

/// Admission-time binding state of one context slot, kept parallel to
/// the engine's plane pointers and rebuilt whenever a plane is installed
/// — the "resolve names once" half of the v2 pipeline.
#[derive(Debug, Clone, Default)]
struct BoundSlot {
    /// The installed plane's prebound IO plan.
    plan: Option<Arc<BoundPlan>>,
    /// The completed previous sweep (kernel slots only), fueling the
    /// dirty-cone incremental path.
    cache: Option<SlotCache>,
    /// Batch-union index of each bound input, in bind order
    /// (`u32::MAX` = not in the canonical prefix, i.e. a `reg:*` input
    /// fed from the tenant's [`RegisterFile`]); rebuilt by
    /// [`ShardEngine::seed_slot`].
    batch_idx: Vec<u32>,
}

/// A kernel slot's completed sweep: the dense input chunks it consumed
/// and the evaluation arena it filled, reused by the next sweep to skip
/// ops outside the dirty cone.
#[derive(Debug, Clone)]
struct SlotCache {
    tenant: TenantId,
    words: usize,
    inputs: Vec<LaneChunk>,
    state: CompiledState,
}

/// One independent fabric shard's execution engine. See the
/// [module docs](self) for the ownership map.
#[derive(Debug, Clone)]
pub struct ShardEngine {
    /// This engine's shard index (stamped into fault records).
    shard: usize,
    fabric: Fabric,
    /// Per-context compiled plane (Arc-shared through the digest cache).
    planes: Vec<Option<Arc<CompiledFabric>>>,
    /// Per-context prebound plan + dirty-cone sweep cache, parallel to
    /// `planes`.
    bound: Vec<BoundSlot>,
    seq: ContextSequencer,
    /// This shard's partition of the service's pending work.
    queue: BatchQueue,
    /// Usage + stream registers of tenants placed on this shard.
    tenants: HashMap<TenantId, TenantState>,
}

impl ShardEngine {
    /// A fresh engine for shard `shard` with geometry `params`, batching
    /// up to `lane_width` requests per slot per pass.
    pub fn new(
        shard: usize,
        params: FabricParams,
        lane_width: usize,
    ) -> Result<Self, ServiceError> {
        Ok(ShardEngine {
            shard,
            fabric: Fabric::new(params)?,
            planes: vec![None; params.contexts],
            bound: vec![BoundSlot::default(); params.contexts],
            seq: ContextSequencer::new(params.arch, params.contexts)?,
            queue: BatchQueue::with_width(params.contexts, lane_width)?,
            tenants: HashMap::new(),
        })
    }

    /// Lanes coalesced per slot per pass.
    #[must_use]
    pub fn lane_width(&self) -> usize {
        self.queue.width()
    }

    /// Rebuilds this engine's queue partition at `width` lanes per slot
    /// and re-seeds every programmed slot's canonical prefix. The
    /// coordinator guarantees no work is pending (it refuses the width
    /// change otherwise — a rebuild would silently drop queued requests).
    pub(crate) fn set_lane_width(&mut self, width: usize) -> Result<(), ServiceError> {
        debug_assert_eq!(
            self.queue.pending_total(),
            0,
            "lane-width change with requests pending"
        );
        self.queue = BatchQueue::with_width(self.planes.len(), width)?;
        for ctx in 0..self.planes.len() {
            // a cached sweep at the old width cannot seed the new one
            self.bound[ctx].cache = None;
            if self.planes[ctx].is_some() {
                self.seed_slot(ctx)?;
            }
        }
        Ok(())
    }

    /// This engine's shard index.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The routed fabric, for admission-time routing and digests.
    pub(crate) fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The routed fabric, read-only.
    pub(crate) fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Installs (or replaces) the compiled plane of context `ctx` — an
    /// `Arc` clone of a cache entry, never a deep copy. Binding runs
    /// once, here; the slot's dirty-cone cache is discarded (it described
    /// sweeps of the previous plane).
    pub(crate) fn install_plane(&mut self, ctx: usize, plane: Arc<CompiledFabric>) {
        self.bound[ctx] = BoundSlot {
            plan: plane.bind(ctx).ok().map(Arc::new),
            cache: None,
            batch_idx: Vec::new(),
        };
        self.planes[ctx] = Some(plane);
    }

    /// The compiled plane of context `ctx`, if programmed.
    pub(crate) fn plane(&self, ctx: usize) -> Option<Arc<CompiledFabric>> {
        self.planes[ctx].clone()
    }

    /// Where this shard's CSS broadcast currently sits.
    #[must_use]
    pub fn css_position(&self) -> usize {
        self.seq.current()
    }

    /// Parks the CSS broadcast on `ctx` without charging toggles (restore
    /// path; see [`ContextSequencer::resume_at`]).
    pub(crate) fn resume_css_at(&mut self, ctx: usize) -> Result<(), ServiceError> {
        self.seq.resume_at(ctx)?;
        Ok(())
    }

    /// The engine's sequencer, read-only (cost-matrix construction).
    pub(crate) fn sequencer(&self) -> &ContextSequencer {
        &self.seq
    }

    /// Registers a tenant placed on this shard, with zeroed state.
    pub(crate) fn add_tenant(&mut self, tenant: TenantId) {
        self.tenants.insert(tenant, TenantState::default());
    }

    /// Registers a tenant arriving with pre-existing state (restore path).
    pub(crate) fn add_tenant_with(&mut self, tenant: TenantId, state: TenantState) {
        self.tenants.insert(tenant, state);
    }

    /// One placed tenant's state, read-only.
    pub(crate) fn tenant_state(&self, tenant: TenantId) -> Result<&TenantState, ServiceError> {
        self.tenants
            .get(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))
    }

    /// One placed tenant's state, mutable (usage charging at the
    /// coordinator's side of a migration).
    pub(crate) fn tenant_state_mut(
        &mut self,
        tenant: TenantId,
    ) -> Result<&mut TenantState, ServiceError> {
        self.tenants
            .get_mut(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))
    }

    /// Seeds the slot's canonical input-name prefix from its plane's bound
    /// inputs, so submit-time coverage checking is a bitmask instead of a
    /// second name scan. Stream registers (`reg:*` bound inputs) are
    /// excluded — requests never drive them; the sweep feeds them from the
    /// tenant's [`RegisterFile`] at pass time.
    pub(crate) fn seed_slot(&mut self, ctx: usize) -> Result<(), ServiceError> {
        let plane = self.planes[ctx]
            .as_ref()
            .ok_or(ServiceError::SlotNotProgrammed {
                shard: self.shard,
                ctx,
            })?;
        let binds = plane.plane(ctx)?.input_binds();
        self.queue.seed(
            ctx,
            binds
                .iter()
                .map(|(_, n)| n.as_str())
                .filter(|n| !n.starts_with(REG_PREFIX)),
        );
        // re-resolve each bound input's union index once — sweeps then
        // read request chunks by index, with no per-pass name scans.
        // Non-register names are all in the canonical prefix just seeded;
        // register inputs are fed from the RegisterFile (or a live
        // explicit drive, resolved at plan time) and get the sentinel.
        let slot = &mut self.bound[ctx];
        slot.batch_idx.clear();
        if let Some(plan) = &slot.plan {
            for (_, name, is_reg) in plan.inputs() {
                let idx = if *is_reg {
                    u32::MAX
                } else {
                    self.queue
                        .batch(ctx)
                        .name_index(name)
                        .map_or(u32::MAX, |i| i as u32)
                };
                slot.batch_idx.push(idx);
            }
        }
        Ok(())
    }

    /// Enqueues one request on `ctx`'s lane batch, charging the tenant's
    /// request counter. Returns the minted id and whether the slot's
    /// lanes are now full (the coordinator should flush this engine).
    pub(crate) fn submit(
        &mut self,
        ctx: usize,
        tenant: TenantId,
        inputs: &[(&str, bool)],
        ids: &mut RequestIdSource,
    ) -> Result<(RequestId, bool), ServiceError> {
        let (id, full) = match self.queue.enqueue(ctx, tenant, inputs, ids) {
            Ok(ok) => ok,
            Err(PushRefusal::Full) => {
                return Err(ServiceError::SlotBacklogged {
                    shard: self.shard,
                    ctx,
                })
            }
            Err(PushRefusal::MissingInput(idx)) => {
                let name = self.queue.input_name(ctx, idx).unwrap_or("?").to_string();
                return Err(ServiceError::MissingInput { name });
            }
        };
        self.tenant_state_mut(tenant)?.usage.requests += 1;
        Ok((id, full))
    }

    /// Discards `ctx`'s queued, not-yet-executed requests (un-counting
    /// them from `tenant`'s usage), re-seeds the slot's canonical prefix,
    /// and returns how many were dropped.
    pub(crate) fn discard_pending(
        &mut self,
        ctx: usize,
        tenant: TenantId,
    ) -> Result<usize, ServiceError> {
        let dropped = self.queue.take(ctx).map_or(0, |t| t.tickets.len());
        self.tenant_state_mut(tenant)?.usage.requests -= dropped;
        self.seed_slot(ctx)?;
        Ok(dropped)
    }

    /// Context slots with pending work, ascending.
    #[must_use]
    pub fn pending(&self) -> Vec<usize> {
        self.queue.pending()
    }

    /// Requests parked on this shard, not yet executed.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queue.pending_total()
    }

    /// A slot's pending lane batch, if non-empty (checkpoint capture).
    pub(crate) fn pending_batch(&self, ctx: usize) -> Option<&LaneBatch> {
        self.queue.slot(ctx)
    }

    /// A slot's `(request, tenant)` tickets, lane order.
    pub(crate) fn tickets(&self, ctx: usize) -> &[(RequestId, TenantId)] {
        self.queue.tickets(ctx)
    }

    /// Re-queues a restored pending batch into the (empty) slot `ctx`,
    /// minting fresh ids. See [`BatchQueue::restore`].
    pub(crate) fn restore_batch(
        &mut self,
        ctx: usize,
        batch: LaneBatch,
        tenant: TenantId,
        ids: &mut RequestIdSource,
    ) -> Vec<RequestId> {
        self.queue.restore(ctx, batch, tenant, ids)
    }

    /// The source half of a migration handoff: surrenders `tenant`'s
    /// per-tenant state and queued lanes, wipes its slot (plane pointer,
    /// queue names, and — for a fabric-resident tenant — the routed
    /// context itself), and forgets the tenant. The caller has already
    /// cloned the plane `Arc` and completed every fallible pre-check, so
    /// this only performs the destructive move.
    pub(crate) fn expel(
        &mut self,
        tenant: TenantId,
        ctx: usize,
        resident: bool,
    ) -> Result<TenantHandoff, ServiceError> {
        let state = self
            .tenants
            .remove(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))?;
        self.planes[ctx] = None;
        self.bound[ctx] = BoundSlot::default();
        if resident {
            self.fabric.clear_context(ctx)?;
        }
        let batch = self.queue.take(ctx);
        // the freed slot must not leak its union names or canonical prefix
        // into whatever tenant occupies it next
        self.queue.clear_slot(ctx);
        Ok(TenantHandoff { state, batch })
    }

    /// The destination half of a migration handoff: installs the plane
    /// (already rebased for `ctx` by the coordinator), adopts the tenant's
    /// state, seeds the slot from the plane's binds, and re-queues the
    /// moved lanes with their original ids.
    pub(crate) fn adopt(
        &mut self,
        tenant: TenantId,
        ctx: usize,
        plane: Arc<CompiledFabric>,
        handoff: TenantHandoff,
    ) -> Result<(), ServiceError> {
        self.install_plane(ctx, plane);
        self.tenants.insert(tenant, handoff.state);
        self.seed_slot(ctx)?;
        if let Some(batch) = handoff.batch {
            self.queue.install(ctx, batch);
        }
        Ok(())
    }

    /// Plans this shard's sweep over its `active` slots — each
    /// `(context, occupant)` precomputed by the coordinator — in CSS
    /// schedule order, reordered for minimum broadcast toggles under
    /// [`OptimizeMode::Optimized`]. One [`PlannedStep`] is appended to
    /// `steps` per active slot with queued work, carrying its
    /// `(shard, pos)` merge key.
    ///
    /// Planning **is** the sweep's switch sequence: the sequencer steps
    /// through the schedule here, and CSS switch energy is charged to the
    /// tenant switched in, alongside the *baseline* toggles the naive
    /// ascending order would have charged (so each bill carries what the
    /// optimizer saved; see [`mcfpga_cost::attribution`]). The broadcast
    /// spends that energy whether or not the step's pass later resolves.
    ///
    /// A structural failure (a broken schedule domain or plane invariant
    /// — never a mere failed pass, which surfaces at apply time as a
    /// [`SlotFault`]) stops the planning and is returned **alongside**
    /// the steps planned first: those steps still evaluate and apply, so
    /// no already-scheduled switch loses its pass.
    pub(crate) fn plan_sweep(
        &mut self,
        active: &[(usize, TenantId)],
        optimize: OptimizeMode,
        matrix: &CostMatrix,
        steps: &mut Vec<PlannedStep>,
    ) -> Option<ServiceError> {
        self.plan_into(active, optimize, matrix, steps).err()
    }

    /// [`plan_sweep`](Self::plan_sweep)'s body; an early `?` loses no
    /// step already pushed.
    fn plan_into(
        &mut self,
        active: &[(usize, TenantId)],
        optimize: OptimizeMode,
        matrix: &CostMatrix,
        steps: &mut Vec<PlannedStep>,
    ) -> Result<(), ServiceError> {
        if active.is_empty() {
            return Ok(());
        }
        let contexts = self.seq.contexts();
        let active_ctxs: Vec<usize> = active.iter().map(|(ctx, _)| *ctx).collect();
        let naive = Schedule::active_sweep(contexts, &active_ctxs)?;
        // the counterfactual: per-context toggles of the naive ascending
        // walk from the broadcast's current position (each active context
        // appears exactly once in a sweep, so a map by context is sound)
        let start = self.seq.current();
        let baseline: Vec<(usize, usize)> = naive
            .as_slice()
            .iter()
            .copied()
            .zip(matrix.step_costs(Some(start), naive.as_slice())?)
            .collect();
        let schedule = self.seq.plan_sweep_with(&naive, optimize, matrix)?;
        let mut pos = 0;
        for ctx in schedule.iter() {
            let Some(batch) = self.queue.slot(ctx) else {
                continue;
            };
            let tenant = active
                .iter()
                .find(|(c, _)| *c == ctx)
                .map(|(_, t)| *t)
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: self.shard,
                    ctx,
                })?;
            let plane = self.planes[ctx]
                .clone()
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: self.shard,
                    ctx,
                })?;
            let toggles = self.seq.step_to(ctx)?;
            let toggles_baseline = baseline
                .iter()
                .find(|(c, _)| *c == ctx)
                .map_or(toggles, |(_, cost)| *cost);
            let tenant_state = self
                .tenants
                .get_mut(&tenant)
                .ok_or(ServiceError::UnknownTenant(tenant.index()))?;
            tenant_state.usage.css_toggles += toggles;
            tenant_state.usage.css_toggles_baseline += toggles_baseline;
            let tenant_regs = &self
                .tenants
                .get(&tenant)
                .ok_or(ServiceError::UnknownTenant(tenant.index()))?
                .regs;
            let words = batch.words();
            let slot = &mut self.bound[ctx];
            let bound = slot.plan.clone();
            let mut chunks: Vec<LaneChunk> = Vec::new();
            let mut missing: Option<Arc<str>> = None;
            if let Some(bound) = &bound {
                chunks.reserve_exact(bound.inputs().len());
                // indices were resolved at seed time; a slot installed
                // without seeding (fault injection) resolves live
                let idx_valid = slot.batch_idx.len() == bound.inputs().len();
                for (i, (_, name, is_reg)) in bound.inputs().iter().enumerate() {
                    let chunk = if *is_reg {
                        // stream registers: every bound `reg:*` input reads
                        // the tenant's chunk from its previous pass (0
                        // before the first) — lane-aligned, so lane `l` of
                        // pass `p+1` consumes the state lane `l` of pass
                        // `p` produced. A request that drove the name
                        // explicitly wins (the batch entry resolves first),
                        // which is how a caller seeds stream state by hand.
                        match batch.name_index(name) {
                            Some(j) => batch.input_chunk(j),
                            None => tenant_regs.get_chunk(name).unwrap_or([0u64; LANE_WORDS]),
                        }
                    } else {
                        let j = if idx_valid {
                            Some(slot.batch_idx[i] as usize).filter(|&j| j != u32::MAX as usize)
                        } else {
                            batch.name_index(name)
                        };
                        match j {
                            Some(j) => {
                                debug_assert_eq!(
                                    batch.input_name(j),
                                    Some(name.as_ref()),
                                    "stale bound-input index for slot {ctx}"
                                );
                                batch.input_chunk(j)
                            }
                            None => {
                                // the union lacks a bound non-register
                                // input — the pass must fail exactly as the
                                // interpreter's seed scan would
                                if missing.is_none() {
                                    missing = Some(Arc::clone(name));
                                }
                                [0u64; LANE_WORDS]
                            }
                        }
                    };
                    chunks.push(chunk);
                }
            }
            // dirty-cone basis: reuse the slot's cached sweep only when it
            // demonstrably describes the same tenant, word count and input
            // arity (the kernel path then skips ops whose cone is clean)
            let kernel_ok =
                missing.is_none() && bound.is_some() && chunks.len() <= 64 && plane.has_kernel(ctx);
            let mut dirty = DIRTY_ALL;
            let mut state = None;
            if kernel_ok {
                if let Some(cache) = slot.cache.take() {
                    if cache.tenant == tenant
                        && cache.words == words
                        && cache.inputs.len() == chunks.len()
                    {
                        let mut mask = 0u64;
                        for (i, (new, old)) in chunks.iter().zip(&cache.inputs).enumerate() {
                            if new != old {
                                mask |= 1 << i;
                            }
                        }
                        dirty = mask;
                    }
                    state = Some(cache.state);
                }
            }
            steps.push(PlannedStep {
                shard: self.shard,
                pos,
                ctx,
                tenant,
                words,
                plane,
                bound,
                chunks,
                dirty,
                missing,
                state,
            });
            pos += 1;
        }
        Ok(())
    }

    /// Applies one evaluated step — the coordinator calls this
    /// sequentially, in merge-key order. On a failed pass the slot's
    /// requests stay queued and a [`SlotFault`] is recorded (the switch
    /// into the context was already charged at plan time). On success the
    /// slot's batch is consumed: `reg:*` output chunks are harvested into
    /// the tenant's register file (state, not answers), the visible
    /// outputs demux into per-lane responses (sharing the bound plan's
    /// interned names — no string allocation anywhere in the pass), and a
    /// kernel slot's inputs + arena return to the slot cache to fuel the
    /// next sweep's dirty-cone skip. Returns the pass's [`EvalStats`]
    /// (`None` for a faulted pass) so the coordinator can bump the
    /// deterministic op counters in apply order. An `Err` from *this*
    /// function is structural (the planned tenant vanished mid-drain) and
    /// practically unreachable — the coordinator sequences every mutation
    /// between plan and apply.
    pub(crate) fn apply_step(
        &mut self,
        step: &mut PlannedStep,
        outcome: Result<EvalOutcome, ServiceError>,
        responses: &mut Vec<Response>,
        faults: &mut Vec<SlotFault>,
    ) -> Result<Option<EvalStats>, ServiceError> {
        debug_assert_eq!(step.shard, self.shard, "step applied to the wrong engine");
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(error) => {
                faults.push(SlotFault {
                    tenant: step.tenant,
                    shard: self.shard,
                    ctx: step.ctx,
                    error,
                });
                // a faulted pass leaves no completed sweep to reuse
                self.bound[step.ctx].cache = None;
                return Ok(None);
            }
        };
        let bound = step
            .bound
            .as_ref()
            .expect("a successful pass evaluated through its bound plan");
        let state = self
            .tenants
            .get_mut(&step.tenant)
            .ok_or(ServiceError::UnknownTenant(step.tenant.index()))?;
        let taken = self
            .queue
            .take(step.ctx)
            .expect("planned slot was non-empty and its pass succeeded");
        state.usage.passes += 1;
        // One Arc clone per visible name, shared by all the pass's
        // responses — demuxing a full batch allocates no strings
        let mut visible: Vec<(Arc<str>, LaneChunk)> = Vec::with_capacity(outcome.outs.len());
        for ((_, name, is_reg), chunk) in bound.outputs().iter().zip(&outcome.outs) {
            if *is_reg {
                state.regs.set_chunk(name, *chunk);
            } else {
                visible.push((Arc::clone(name), *chunk));
            }
        }
        for (lane, (request, owner)) in taken.tickets.iter().enumerate() {
            responses.push(Response {
                request: *request,
                tenant: *owner,
                outputs: visible
                    .iter()
                    .map(|(n, chunk)| (Arc::clone(n), chunk_bit(chunk, lane)))
                    .collect(),
            });
        }
        // hand the emptied buffers back to the slot (cleared, capacity
        // kept) so steady-state flushes re-allocate nothing
        self.queue.recycle(step.ctx, taken);
        if outcome.stats.kernel {
            if let Some(arena) = step.state.take() {
                self.bound[step.ctx].cache = Some(SlotCache {
                    tenant: step.tenant,
                    words: step.words,
                    inputs: std::mem::take(&mut step.chunks),
                    state: arena,
                });
            }
        }
        Ok(Some(outcome.stats))
    }
}

// A future `Rc`, raw pointer or other non-thread-safe field anywhere in
// these ownership trees must fail the *build*, not a code review: the
// worker pool moves owned `PlannedStep`s across threads, and engines are
// carried inside `ShardedService` clones.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardEngine>();
    assert_send_sync::<PlannedStep>();
    assert_send_sync::<ServiceError>();
};
