//! The per-shard execution engine.
//!
//! A [`ShardEngine`] owns **everything one fabric shard needs to execute a
//! sweep without touching another shard**: its routed [`Fabric`], the
//! per-context compiled planes (Arc-shared through the coordinator's plane
//! cache — installing a plane clones a pointer, never a plane), its own
//! [`ContextSequencer`] (CSS broadcast position is per-shard physical
//! state), its partition of the service's batch queue, and the usage
//! counters + stream-register files of the tenants placed on it.
//!
//! A sweep is split into three phases so its only parallel part is pure:
//!
//! 1. **Plan** (`plan_sweep`), sequential on
//!    the coordinator: the CSS schedule is computed, the broadcast steps
//!    through it (switch toggles are charged here — the broadcast spends
//!    that energy whether or not the pass later resolves), and each active
//!    slot becomes one owned `PlannedStep` carrying its compiled-plane
//!    `Arc`, input lane chunks (queued requests plus the tenant's `reg:*`
//!    stream state) and its `(shard, sweep-position)` merge key.
//! 2. **Eval** (`eval_step`), the only concurrent phase: a pure
//!    function from a `PlannedStep` to output lane chunks, safe to run on
//!    any worker in any order — steps share nothing but immutable `Arc`s
//!    and a per-thread scratch.
//! 3. **Apply** (`apply_step`), sequential on
//!    the coordinator **in merge-key order** (shard, then sweep
//!    position): consumes the slot's batch on success, harvests `reg:*`
//!    chunks, demuxes responses, records a [`crate::service::SlotFault`]
//!    on failure (requests stay queued). Thread completion order never
//!    reaches this phase, so output is bit-for-bit identical at every
//!    worker count and lane width.
//!
//! Tenant mobility across engines is an explicit two-step handoff —
//! `expel` on the source, then `adopt` on the destination (both
//! crate-internal; the coordinator's migration ops drive them) — so
//! ownership of a
//! tenant's plane, queued lanes, registers and usage moves atomically from
//! one engine to another (the coordinator sequences the two calls; they
//! work unchanged when source and destination are the same engine).

use crate::batch::{BatchQueue, RequestId, RequestIdSource, Response, TakenBatch};
use crate::registry::TenantId;
use crate::service::SlotFault;
use crate::ServiceError;
use mcfpga_cost::attribution::TenantUsage;
use mcfpga_css::optimize::{CostMatrix, OptimizeMode};
use mcfpga_css::Schedule;
use mcfpga_fabric::compiled::{
    chunk_bit, CompiledState, LaneBatch, LaneChunk, PushRefusal, LANE_WORDS,
};
use mcfpga_fabric::context::ContextSequencer;
use mcfpga_fabric::{CompiledFabric, Fabric, FabricParams, RegisterFile};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Prefix of signal names that are *stream registers*: outputs so named
/// are captured into the tenant's [`RegisterFile`] after each pass and
/// re-driven as inputs on its next pass (lane-aligned), instead of being
/// returned in responses. The same convention `fabric::temporal` uses for
/// values crossing context-switch boundaries.
pub(crate) const REG_PREFIX: &str = "reg:";

/// Per-tenant state an engine keeps for each tenant placed on it: the
/// usage counters billing reads and the stream-register file carried
/// between the tenant's passes. Moves wholesale in a migration handoff.
#[derive(Debug, Clone, Default)]
pub(crate) struct TenantState {
    /// Accumulated usage counters (requests, passes, toggles, migrations).
    pub usage: TenantUsage,
    /// `reg:*` stream state (lane words from the tenant's previous pass).
    pub regs: RegisterFile,
}

/// Everything a tenant hands from one engine to another in a migration:
/// produced by [`ShardEngine::expel`], consumed by
/// [`ShardEngine::adopt`].
#[derive(Debug)]
pub(crate) struct TenantHandoff {
    /// Usage + registers, moved (the source engine forgets the tenant).
    pub state: TenantState,
    /// The tenant's queued-but-unexecuted requests, original ids intact.
    pub batch: Option<TakenBatch>,
}

/// One per-context sweep task, planned sequentially and evaluated (maybe
/// concurrently, maybe stolen onto a different worker) by [`eval_step`].
/// Owns everything its evaluation needs — plane `Arc`, input chunks,
/// occupied word count — so the worker borrows nothing from the engine:
/// the engine's queue still holds the slot's batch, which is consumed
/// only at apply time on success, and the `(shard, pos)` pair is the
/// deterministic merge key the coordinator orders applies by.
#[derive(Debug, Clone)]
pub(crate) struct PlannedStep {
    /// Shard of the slot (first half of the merge key, and the pool
    /// affinity hint).
    pub shard: usize,
    /// Position within the shard's planned sweep (second half of the
    /// merge key).
    pub pos: usize,
    /// The context slot to evaluate.
    pub ctx: usize,
    /// The slot's occupant.
    pub tenant: TenantId,
    /// Occupied 64-lane words ([`LaneBatch::words`]) — sparse batches pay
    /// for only the words they fill.
    pub words: usize,
    /// The slot's compiled plane (shared, immutable).
    pub plane: Arc<CompiledFabric>,
    /// Union input chunks: the queued requests' lane words plus the
    /// tenant's `reg:*` stream state, captured at plan time.
    pub lane_inputs: Vec<(String, LaneChunk)>,
}

thread_local! {
    /// Per-thread evaluation scratch, reused across steps: pool workers
    /// and the coordinator thread each keep one, so steady-state sweeps
    /// re-allocate no arenas. `eval_chunks_into` rebuilds it when a
    /// plane's resource layout differs from the scratch's.
    static EVAL_SCRATCH: RefCell<Option<CompiledState>> = const { RefCell::new(None) };
}

/// Evaluates one planned step — the **pure** phase of a sweep, safe on
/// any thread: reads only the step's own data (and a thread-local
/// scratch), mutates no engine state. An `Err` here is the *pass*
/// failing; [`ShardEngine::apply_step`] turns it into a
/// [`SlotFault`] with the requests left queued.
pub(crate) fn eval_step(step: &PlannedStep) -> Result<Vec<(String, LaneChunk)>, ServiceError> {
    let inputs: Vec<(&str, LaneChunk)> = step
        .lane_inputs
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    EVAL_SCRATCH.with(|cell| {
        let mut slot = cell.borrow_mut();
        let scratch = slot.get_or_insert_with(|| step.plane.new_state());
        step.plane
            .eval_chunks_into(step.ctx, &inputs, step.words, scratch)
            .map_err(ServiceError::from)
    })
}

/// One independent fabric shard's execution engine. See the
/// [module docs](self) for the ownership map.
#[derive(Debug, Clone)]
pub struct ShardEngine {
    /// This engine's shard index (stamped into fault records).
    shard: usize,
    fabric: Fabric,
    /// Per-context compiled plane (Arc-shared through the digest cache).
    planes: Vec<Option<Arc<CompiledFabric>>>,
    seq: ContextSequencer,
    /// This shard's partition of the service's pending work.
    queue: BatchQueue,
    /// Usage + stream registers of tenants placed on this shard.
    tenants: HashMap<TenantId, TenantState>,
}

impl ShardEngine {
    /// A fresh engine for shard `shard` with geometry `params`, batching
    /// up to `lane_width` requests per slot per pass.
    pub fn new(
        shard: usize,
        params: FabricParams,
        lane_width: usize,
    ) -> Result<Self, ServiceError> {
        Ok(ShardEngine {
            shard,
            fabric: Fabric::new(params)?,
            planes: vec![None; params.contexts],
            seq: ContextSequencer::new(params.arch, params.contexts)?,
            queue: BatchQueue::with_width(params.contexts, lane_width)?,
            tenants: HashMap::new(),
        })
    }

    /// Lanes coalesced per slot per pass.
    #[must_use]
    pub fn lane_width(&self) -> usize {
        self.queue.width()
    }

    /// Rebuilds this engine's queue partition at `width` lanes per slot
    /// and re-seeds every programmed slot's canonical prefix. The
    /// coordinator guarantees no work is pending (it refuses the width
    /// change otherwise — a rebuild would silently drop queued requests).
    pub(crate) fn set_lane_width(&mut self, width: usize) -> Result<(), ServiceError> {
        debug_assert_eq!(
            self.queue.pending_total(),
            0,
            "lane-width change with requests pending"
        );
        self.queue = BatchQueue::with_width(self.planes.len(), width)?;
        for ctx in 0..self.planes.len() {
            if self.planes[ctx].is_some() {
                self.seed_slot(ctx)?;
            }
        }
        Ok(())
    }

    /// This engine's shard index.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The routed fabric, for admission-time routing and digests.
    pub(crate) fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The routed fabric, read-only.
    pub(crate) fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Installs (or replaces) the compiled plane of context `ctx` — an
    /// `Arc` clone of a cache entry, never a deep copy.
    pub(crate) fn install_plane(&mut self, ctx: usize, plane: Arc<CompiledFabric>) {
        self.planes[ctx] = Some(plane);
    }

    /// The compiled plane of context `ctx`, if programmed.
    pub(crate) fn plane(&self, ctx: usize) -> Option<Arc<CompiledFabric>> {
        self.planes[ctx].clone()
    }

    /// Where this shard's CSS broadcast currently sits.
    #[must_use]
    pub fn css_position(&self) -> usize {
        self.seq.current()
    }

    /// Parks the CSS broadcast on `ctx` without charging toggles (restore
    /// path; see [`ContextSequencer::resume_at`]).
    pub(crate) fn resume_css_at(&mut self, ctx: usize) -> Result<(), ServiceError> {
        self.seq.resume_at(ctx)?;
        Ok(())
    }

    /// The engine's sequencer, read-only (cost-matrix construction).
    pub(crate) fn sequencer(&self) -> &ContextSequencer {
        &self.seq
    }

    /// Registers a tenant placed on this shard, with zeroed state.
    pub(crate) fn add_tenant(&mut self, tenant: TenantId) {
        self.tenants.insert(tenant, TenantState::default());
    }

    /// Registers a tenant arriving with pre-existing state (restore path).
    pub(crate) fn add_tenant_with(&mut self, tenant: TenantId, state: TenantState) {
        self.tenants.insert(tenant, state);
    }

    /// One placed tenant's state, read-only.
    pub(crate) fn tenant_state(&self, tenant: TenantId) -> Result<&TenantState, ServiceError> {
        self.tenants
            .get(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))
    }

    /// One placed tenant's state, mutable (usage charging at the
    /// coordinator's side of a migration).
    pub(crate) fn tenant_state_mut(
        &mut self,
        tenant: TenantId,
    ) -> Result<&mut TenantState, ServiceError> {
        self.tenants
            .get_mut(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))
    }

    /// Seeds the slot's canonical input-name prefix from its plane's bound
    /// inputs, so submit-time coverage checking is a bitmask instead of a
    /// second name scan. Stream registers (`reg:*` bound inputs) are
    /// excluded — requests never drive them; the sweep feeds them from the
    /// tenant's [`RegisterFile`] at pass time.
    pub(crate) fn seed_slot(&mut self, ctx: usize) -> Result<(), ServiceError> {
        let plane = self.planes[ctx]
            .as_ref()
            .ok_or(ServiceError::SlotNotProgrammed {
                shard: self.shard,
                ctx,
            })?;
        let binds = plane.plane(ctx)?.input_binds();
        self.queue.seed(
            ctx,
            binds
                .iter()
                .map(|(_, n)| n.as_str())
                .filter(|n| !n.starts_with(REG_PREFIX)),
        );
        Ok(())
    }

    /// Enqueues one request on `ctx`'s lane batch, charging the tenant's
    /// request counter. Returns the minted id and whether the slot's
    /// lanes are now full (the coordinator should flush this engine).
    pub(crate) fn submit(
        &mut self,
        ctx: usize,
        tenant: TenantId,
        inputs: &[(&str, bool)],
        ids: &mut RequestIdSource,
    ) -> Result<(RequestId, bool), ServiceError> {
        let (id, full) = match self.queue.enqueue(ctx, tenant, inputs, ids) {
            Ok(ok) => ok,
            Err(PushRefusal::Full) => {
                return Err(ServiceError::SlotBacklogged {
                    shard: self.shard,
                    ctx,
                })
            }
            Err(PushRefusal::MissingInput(idx)) => {
                let name = self.queue.input_name(ctx, idx).unwrap_or("?").to_string();
                return Err(ServiceError::MissingInput { name });
            }
        };
        self.tenant_state_mut(tenant)?.usage.requests += 1;
        Ok((id, full))
    }

    /// Discards `ctx`'s queued, not-yet-executed requests (un-counting
    /// them from `tenant`'s usage), re-seeds the slot's canonical prefix,
    /// and returns how many were dropped.
    pub(crate) fn discard_pending(
        &mut self,
        ctx: usize,
        tenant: TenantId,
    ) -> Result<usize, ServiceError> {
        let dropped = self.queue.take(ctx).map_or(0, |t| t.tickets.len());
        self.tenant_state_mut(tenant)?.usage.requests -= dropped;
        self.seed_slot(ctx)?;
        Ok(dropped)
    }

    /// Context slots with pending work, ascending.
    #[must_use]
    pub fn pending(&self) -> Vec<usize> {
        self.queue.pending()
    }

    /// Requests parked on this shard, not yet executed.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queue.pending_total()
    }

    /// A slot's pending lane batch, if non-empty (checkpoint capture).
    pub(crate) fn pending_batch(&self, ctx: usize) -> Option<&LaneBatch> {
        self.queue.slot(ctx)
    }

    /// A slot's `(request, tenant)` tickets, lane order.
    pub(crate) fn tickets(&self, ctx: usize) -> &[(RequestId, TenantId)] {
        self.queue.tickets(ctx)
    }

    /// Re-queues a restored pending batch into the (empty) slot `ctx`,
    /// minting fresh ids. See [`BatchQueue::restore`].
    pub(crate) fn restore_batch(
        &mut self,
        ctx: usize,
        batch: LaneBatch,
        tenant: TenantId,
        ids: &mut RequestIdSource,
    ) -> Vec<RequestId> {
        self.queue.restore(ctx, batch, tenant, ids)
    }

    /// The source half of a migration handoff: surrenders `tenant`'s
    /// per-tenant state and queued lanes, wipes its slot (plane pointer,
    /// queue names, and — for a fabric-resident tenant — the routed
    /// context itself), and forgets the tenant. The caller has already
    /// cloned the plane `Arc` and completed every fallible pre-check, so
    /// this only performs the destructive move.
    pub(crate) fn expel(
        &mut self,
        tenant: TenantId,
        ctx: usize,
        resident: bool,
    ) -> Result<TenantHandoff, ServiceError> {
        let state = self
            .tenants
            .remove(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))?;
        self.planes[ctx] = None;
        if resident {
            self.fabric.clear_context(ctx)?;
        }
        let batch = self.queue.take(ctx);
        // the freed slot must not leak its union names or canonical prefix
        // into whatever tenant occupies it next
        self.queue.clear_slot(ctx);
        Ok(TenantHandoff { state, batch })
    }

    /// The destination half of a migration handoff: installs the plane
    /// (already rebased for `ctx` by the coordinator), adopts the tenant's
    /// state, seeds the slot from the plane's binds, and re-queues the
    /// moved lanes with their original ids.
    pub(crate) fn adopt(
        &mut self,
        tenant: TenantId,
        ctx: usize,
        plane: Arc<CompiledFabric>,
        handoff: TenantHandoff,
    ) -> Result<(), ServiceError> {
        self.planes[ctx] = Some(plane);
        self.tenants.insert(tenant, handoff.state);
        self.seed_slot(ctx)?;
        if let Some(batch) = handoff.batch {
            self.queue.install(ctx, batch);
        }
        Ok(())
    }

    /// Plans this shard's sweep over its `active` slots — each
    /// `(context, occupant)` precomputed by the coordinator — in CSS
    /// schedule order, reordered for minimum broadcast toggles under
    /// [`OptimizeMode::Optimized`]. One [`PlannedStep`] is appended to
    /// `steps` per active slot with queued work, carrying its
    /// `(shard, pos)` merge key.
    ///
    /// Planning **is** the sweep's switch sequence: the sequencer steps
    /// through the schedule here, and CSS switch energy is charged to the
    /// tenant switched in, alongside the *baseline* toggles the naive
    /// ascending order would have charged (so each bill carries what the
    /// optimizer saved; see [`mcfpga_cost::attribution`]). The broadcast
    /// spends that energy whether or not the step's pass later resolves.
    ///
    /// A structural failure (a broken schedule domain or plane invariant
    /// — never a mere failed pass, which surfaces at apply time as a
    /// [`SlotFault`]) stops the planning and is returned **alongside**
    /// the steps planned first: those steps still evaluate and apply, so
    /// no already-scheduled switch loses its pass.
    pub(crate) fn plan_sweep(
        &mut self,
        active: &[(usize, TenantId)],
        optimize: OptimizeMode,
        matrix: &CostMatrix,
        steps: &mut Vec<PlannedStep>,
    ) -> Option<ServiceError> {
        self.plan_into(active, optimize, matrix, steps).err()
    }

    /// [`plan_sweep`](Self::plan_sweep)'s body; an early `?` loses no
    /// step already pushed.
    fn plan_into(
        &mut self,
        active: &[(usize, TenantId)],
        optimize: OptimizeMode,
        matrix: &CostMatrix,
        steps: &mut Vec<PlannedStep>,
    ) -> Result<(), ServiceError> {
        if active.is_empty() {
            return Ok(());
        }
        let contexts = self.seq.contexts();
        let active_ctxs: Vec<usize> = active.iter().map(|(ctx, _)| *ctx).collect();
        let naive = Schedule::active_sweep(contexts, &active_ctxs)?;
        // the counterfactual: per-context toggles of the naive ascending
        // walk from the broadcast's current position (each active context
        // appears exactly once in a sweep, so a map by context is sound)
        let start = self.seq.current();
        let baseline: Vec<(usize, usize)> = naive
            .as_slice()
            .iter()
            .copied()
            .zip(matrix.step_costs(Some(start), naive.as_slice())?)
            .collect();
        let schedule = self.seq.plan_sweep_with(&naive, optimize, matrix)?;
        let mut pos = 0;
        for ctx in schedule.iter() {
            let Some(batch) = self.queue.slot(ctx) else {
                continue;
            };
            let tenant = active
                .iter()
                .find(|(c, _)| *c == ctx)
                .map(|(_, t)| *t)
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: self.shard,
                    ctx,
                })?;
            let plane = self.planes[ctx]
                .clone()
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: self.shard,
                    ctx,
                })?;
            let toggles = self.seq.step_to(ctx)?;
            let toggles_baseline = baseline
                .iter()
                .find(|(c, _)| *c == ctx)
                .map_or(toggles, |(_, cost)| *cost);
            let usage = &mut self
                .tenants
                .get_mut(&tenant)
                .ok_or(ServiceError::UnknownTenant(tenant.index()))?
                .usage;
            usage.css_toggles += toggles;
            usage.css_toggles_baseline += toggles_baseline;
            // stream registers: every bound `reg:*` input reads the
            // tenant's chunk from its previous pass (0 before the first) —
            // lane-aligned, so lane `l` of pass `p+1` consumes the state
            // lane `l` of pass `p` produced. A request that drove the name
            // explicitly wins (the batch entry resolves first), which is
            // how a caller seeds stream state by hand.
            let binds = plane.plane(ctx)?.input_binds();
            let tenant_regs = &self.tenant_state(tenant)?.regs;
            let mut lane_inputs: Vec<(String, LaneChunk)> = batch
                .lane_inputs()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect();
            for (_, name) in binds {
                if name.starts_with(REG_PREFIX) && !lane_inputs.iter().any(|(n, _)| n == name) {
                    lane_inputs.push((
                        name.clone(),
                        tenant_regs.get_chunk(name).unwrap_or([0u64; LANE_WORDS]),
                    ));
                }
            }
            steps.push(PlannedStep {
                shard: self.shard,
                pos,
                ctx,
                tenant,
                words: batch.words(),
                plane,
                lane_inputs,
            });
            pos += 1;
        }
        Ok(())
    }

    /// Applies one evaluated step — the coordinator calls this
    /// sequentially, in merge-key order. On a failed pass the slot's
    /// requests stay queued and a [`SlotFault`] is recorded (the switch
    /// into the context was already charged at plan time). On success the
    /// slot's batch is consumed: `reg:*` output chunks are harvested into
    /// the tenant's register file (state, not answers) and the visible
    /// outputs demux into per-lane responses. An `Err` from *this*
    /// function is structural (the planned tenant vanished mid-drain) and
    /// practically unreachable — the coordinator sequences every mutation
    /// between plan and apply.
    pub(crate) fn apply_step(
        &mut self,
        step: &PlannedStep,
        outs: Result<Vec<(String, LaneChunk)>, ServiceError>,
        responses: &mut Vec<Response>,
        faults: &mut Vec<SlotFault>,
    ) -> Result<(), ServiceError> {
        debug_assert_eq!(step.shard, self.shard, "step applied to the wrong engine");
        let outs = match outs {
            Ok(outs) => outs,
            Err(error) => {
                faults.push(SlotFault {
                    tenant: step.tenant,
                    shard: self.shard,
                    ctx: step.ctx,
                    error,
                });
                return Ok(());
            }
        };
        let state = self
            .tenants
            .get_mut(&step.tenant)
            .ok_or(ServiceError::UnknownTenant(step.tenant.index()))?;
        let taken = self
            .queue
            .take(step.ctx)
            .expect("planned slot was non-empty and its pass succeeded");
        state.usage.passes += 1;
        // One Arc per visible name, shared by all the pass's responses —
        // demuxing a full batch allocates no strings
        let mut visible: Vec<(Arc<str>, LaneChunk)> = Vec::with_capacity(outs.len());
        for (name, chunk) in &outs {
            if name.starts_with(REG_PREFIX) {
                state.regs.set_chunk(name, *chunk);
            } else {
                visible.push((Arc::from(name.as_str()), *chunk));
            }
        }
        for (lane, (request, owner)) in taken.tickets.iter().enumerate() {
            responses.push(Response {
                request: *request,
                tenant: *owner,
                outputs: visible
                    .iter()
                    .map(|(n, chunk)| (Arc::clone(n), chunk_bit(chunk, lane)))
                    .collect(),
            });
        }
        // hand the emptied buffers back to the slot (cleared, capacity
        // kept) so steady-state flushes re-allocate nothing
        self.queue.recycle(step.ctx, taken);
        Ok(())
    }
}

// A future `Rc`, raw pointer or other non-thread-safe field anywhere in
// these ownership trees must fail the *build*, not a code review: the
// worker pool moves owned `PlannedStep`s across threads, and engines are
// carried inside `ShardedService` clones.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardEngine>();
    assert_send_sync::<PlannedStep>();
    assert_send_sync::<ServiceError>();
};
