//! The per-shard execution engine.
//!
//! A [`ShardEngine`] owns **everything one fabric shard needs to execute a
//! sweep without touching another shard**: its routed [`Fabric`], the
//! per-context compiled planes (Arc-shared through the coordinator's plane
//! cache — installing a plane clones a pointer, never a plane), its own
//! [`ContextSequencer`] (CSS broadcast position is per-shard physical
//! state), its partition of the service's batch queue, a reusable
//! evaluation scratch, and the usage counters + stream-register files of
//! the tenants placed on it.
//!
//! Shards are data-independent by construction — the paper's multi-context
//! fabric exists precisely so configuration planes progress without
//! interfering — so engines can run their sweeps concurrently. What keeps
//! parallel execution *observably identical* to sequential execution is
//! the split of [`run_sweep`](ShardEngine::run_sweep)'s effects:
//!
//! * engine-local state (sequencer position, queue slots, registers,
//!   scratch) mutates in place — no other engine can see it;
//! * externally visible outputs (responses, faults, usage deltas) are
//!   **returned** as a [`SweepOutcome`] and merged by the coordinator in
//!   shard-then-lane order, never in thread-completion order.
//!
//! Tenant mobility across engines is an explicit two-step handoff —
//! `expel` on the source, then `adopt` on the destination (both
//! crate-internal; the coordinator's migration ops drive them) — so
//! ownership of a
//! tenant's plane, queued lanes, registers and usage moves atomically from
//! one engine to another (the coordinator sequences the two calls; they
//! work unchanged when source and destination are the same engine).

use crate::batch::{BatchQueue, RequestId, RequestIdSource, Response, TakenBatch};
use crate::registry::TenantId;
use crate::service::SlotFault;
use crate::ServiceError;
use mcfpga_cost::attribution::{TenantUsage, UsageLedger};
use mcfpga_css::optimize::{CostMatrix, OptimizeMode};
use mcfpga_css::Schedule;
use mcfpga_fabric::compiled::{CompiledState, LaneBatch, PushRefusal};
use mcfpga_fabric::context::ContextSequencer;
use mcfpga_fabric::{CompiledFabric, Fabric, FabricParams, RegisterFile};
use std::collections::HashMap;
use std::sync::Arc;

/// Prefix of signal names that are *stream registers*: outputs so named
/// are captured into the tenant's [`RegisterFile`] after each pass and
/// re-driven as inputs on its next pass (lane-aligned), instead of being
/// returned in responses. The same convention `fabric::temporal` uses for
/// values crossing context-switch boundaries.
pub(crate) const REG_PREFIX: &str = "reg:";

/// Per-tenant state an engine keeps for each tenant placed on it: the
/// usage counters billing reads and the stream-register file carried
/// between the tenant's passes. Moves wholesale in a migration handoff.
#[derive(Debug, Clone, Default)]
pub(crate) struct TenantState {
    /// Accumulated usage counters (requests, passes, toggles, migrations).
    pub usage: TenantUsage,
    /// `reg:*` stream state (lane words from the tenant's previous pass).
    pub regs: RegisterFile,
}

/// Everything a tenant hands from one engine to another in a migration:
/// produced by [`ShardEngine::expel`], consumed by
/// [`ShardEngine::adopt`].
#[derive(Debug)]
pub(crate) struct TenantHandoff {
    /// Usage + registers, moved (the source engine forgets the tenant).
    pub state: TenantState,
    /// The tenant's queued-but-unexecuted requests, original ids intact.
    pub batch: Option<TakenBatch>,
}

/// The externally visible outputs of one engine sweep, returned to the
/// coordinator for the deterministic shard-then-lane merge. Everything in
/// here is ordered by the engine's own sequential sweep (slot execution
/// order, then lane order within a slot) — concatenating outcomes in
/// shard order therefore reproduces the sequential service's output
/// exactly, regardless of which worker thread ran which engine.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Completed responses, slot-then-lane order.
    pub responses: Vec<Response>,
    /// Failed passes (requests stay queued), slot order.
    pub faults: Vec<SlotFault>,
    /// Usage charged during the sweep, keyed by tenant, charge order. The
    /// coordinator absorbs this back into the owning engine's tenant
    /// states after the merge — billing is part of the merged output, not
    /// a side effect racing inside the sweep.
    pub usage: UsageLedger<TenantId>,
    /// A structural failure that stopped the sweep early (a broken
    /// schedule domain or plane invariant — never a mere failed pass,
    /// which is a [`SlotFault`]). Carried *alongside* the outputs of the
    /// slots that completed first, so the coordinator can merge those
    /// before propagating the error; dropping them would lose consumed
    /// requests.
    pub error: Option<ServiceError>,
}

/// One independent fabric shard's execution engine. See the
/// [module docs](self) for the ownership map.
#[derive(Debug, Clone)]
pub struct ShardEngine {
    /// This engine's shard index (stamped into fault records).
    shard: usize,
    fabric: Fabric,
    /// Per-context compiled plane (Arc-shared through the digest cache).
    planes: Vec<Option<Arc<CompiledFabric>>>,
    seq: ContextSequencer,
    /// Reusable evaluation scratch (all planes share one layout).
    scratch: Option<CompiledState>,
    /// This shard's partition of the service's pending work.
    queue: BatchQueue,
    /// Usage + stream registers of tenants placed on this shard.
    tenants: HashMap<TenantId, TenantState>,
}

impl ShardEngine {
    /// A fresh engine for shard `shard` with geometry `params`.
    pub fn new(shard: usize, params: FabricParams) -> Result<Self, ServiceError> {
        Ok(ShardEngine {
            shard,
            fabric: Fabric::new(params)?,
            planes: vec![None; params.contexts],
            seq: ContextSequencer::new(params.arch, params.contexts)?,
            scratch: None,
            queue: BatchQueue::new(params.contexts),
            tenants: HashMap::new(),
        })
    }

    /// This engine's shard index.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The routed fabric, for admission-time routing and digests.
    pub(crate) fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The routed fabric, read-only.
    pub(crate) fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Installs (or replaces) the compiled plane of context `ctx` — an
    /// `Arc` clone of a cache entry, never a deep copy.
    pub(crate) fn install_plane(&mut self, ctx: usize, plane: Arc<CompiledFabric>) {
        self.planes[ctx] = Some(plane);
    }

    /// The compiled plane of context `ctx`, if programmed.
    pub(crate) fn plane(&self, ctx: usize) -> Option<Arc<CompiledFabric>> {
        self.planes[ctx].clone()
    }

    /// Where this shard's CSS broadcast currently sits.
    #[must_use]
    pub fn css_position(&self) -> usize {
        self.seq.current()
    }

    /// Parks the CSS broadcast on `ctx` without charging toggles (restore
    /// path; see [`ContextSequencer::resume_at`]).
    pub(crate) fn resume_css_at(&mut self, ctx: usize) -> Result<(), ServiceError> {
        self.seq.resume_at(ctx)?;
        Ok(())
    }

    /// The engine's sequencer, read-only (cost-matrix construction).
    pub(crate) fn sequencer(&self) -> &ContextSequencer {
        &self.seq
    }

    /// Registers a tenant placed on this shard, with zeroed state.
    pub(crate) fn add_tenant(&mut self, tenant: TenantId) {
        self.tenants.insert(tenant, TenantState::default());
    }

    /// Registers a tenant arriving with pre-existing state (restore path).
    pub(crate) fn add_tenant_with(&mut self, tenant: TenantId, state: TenantState) {
        self.tenants.insert(tenant, state);
    }

    /// One placed tenant's state, read-only.
    pub(crate) fn tenant_state(&self, tenant: TenantId) -> Result<&TenantState, ServiceError> {
        self.tenants
            .get(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))
    }

    /// One placed tenant's state, mutable (usage charging at the
    /// coordinator's side of a migration).
    pub(crate) fn tenant_state_mut(
        &mut self,
        tenant: TenantId,
    ) -> Result<&mut TenantState, ServiceError> {
        self.tenants
            .get_mut(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))
    }

    /// Seeds the slot's canonical input-name prefix from its plane's bound
    /// inputs, so submit-time coverage checking is a bitmask instead of a
    /// second name scan. Stream registers (`reg:*` bound inputs) are
    /// excluded — requests never drive them; the sweep feeds them from the
    /// tenant's [`RegisterFile`] at pass time.
    pub(crate) fn seed_slot(&mut self, ctx: usize) -> Result<(), ServiceError> {
        let plane = self.planes[ctx]
            .as_ref()
            .ok_or(ServiceError::SlotNotProgrammed {
                shard: self.shard,
                ctx,
            })?;
        let binds = plane.plane(ctx)?.input_binds();
        self.queue.seed(
            ctx,
            binds
                .iter()
                .map(|(_, n)| n.as_str())
                .filter(|n| !n.starts_with(REG_PREFIX)),
        );
        Ok(())
    }

    /// Enqueues one request on `ctx`'s lane batch, charging the tenant's
    /// request counter. Returns the minted id and whether the slot's 64
    /// lanes are now full (the coordinator should flush this engine).
    pub(crate) fn submit(
        &mut self,
        ctx: usize,
        tenant: TenantId,
        inputs: &[(&str, bool)],
        ids: &mut RequestIdSource,
    ) -> Result<(RequestId, bool), ServiceError> {
        let (id, full) = match self.queue.enqueue(ctx, tenant, inputs, ids) {
            Ok(ok) => ok,
            Err(PushRefusal::Full) => {
                return Err(ServiceError::SlotBacklogged {
                    shard: self.shard,
                    ctx,
                })
            }
            Err(PushRefusal::MissingInput(idx)) => {
                let name = self.queue.input_name(ctx, idx).unwrap_or("?").to_string();
                return Err(ServiceError::MissingInput { name });
            }
        };
        self.tenant_state_mut(tenant)?.usage.requests += 1;
        Ok((id, full))
    }

    /// Discards `ctx`'s queued, not-yet-executed requests (un-counting
    /// them from `tenant`'s usage), re-seeds the slot's canonical prefix,
    /// and returns how many were dropped.
    pub(crate) fn discard_pending(
        &mut self,
        ctx: usize,
        tenant: TenantId,
    ) -> Result<usize, ServiceError> {
        let dropped = self.queue.take(ctx).map_or(0, |t| t.tickets.len());
        self.tenant_state_mut(tenant)?.usage.requests -= dropped;
        self.seed_slot(ctx)?;
        Ok(dropped)
    }

    /// Context slots with pending work, ascending.
    #[must_use]
    pub fn pending(&self) -> Vec<usize> {
        self.queue.pending()
    }

    /// Requests parked on this shard, not yet executed.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queue.pending_total()
    }

    /// A slot's pending lane batch, if non-empty (checkpoint capture).
    pub(crate) fn pending_batch(&self, ctx: usize) -> Option<&LaneBatch> {
        self.queue.slot(ctx)
    }

    /// A slot's `(request, tenant)` tickets, lane order.
    pub(crate) fn tickets(&self, ctx: usize) -> &[(RequestId, TenantId)] {
        self.queue.tickets(ctx)
    }

    /// Re-queues a restored pending batch into the (empty) slot `ctx`,
    /// minting fresh ids. See [`BatchQueue::restore`].
    pub(crate) fn restore_batch(
        &mut self,
        ctx: usize,
        batch: LaneBatch,
        tenant: TenantId,
        ids: &mut RequestIdSource,
    ) -> Vec<RequestId> {
        self.queue.restore(ctx, batch, tenant, ids)
    }

    /// The source half of a migration handoff: surrenders `tenant`'s
    /// per-tenant state and queued lanes, wipes its slot (plane pointer,
    /// queue names, and — for a fabric-resident tenant — the routed
    /// context itself), and forgets the tenant. The caller has already
    /// cloned the plane `Arc` and completed every fallible pre-check, so
    /// this only performs the destructive move.
    pub(crate) fn expel(
        &mut self,
        tenant: TenantId,
        ctx: usize,
        resident: bool,
    ) -> Result<TenantHandoff, ServiceError> {
        let state = self
            .tenants
            .remove(&tenant)
            .ok_or(ServiceError::UnknownTenant(tenant.index()))?;
        self.planes[ctx] = None;
        if resident {
            self.fabric.clear_context(ctx)?;
        }
        let batch = self.queue.take(ctx);
        // the freed slot must not leak its union names or canonical prefix
        // into whatever tenant occupies it next
        self.queue.clear_slot(ctx);
        Ok(TenantHandoff { state, batch })
    }

    /// The destination half of a migration handoff: installs the plane
    /// (already rebased for `ctx` by the coordinator), adopts the tenant's
    /// state, seeds the slot from the plane's binds, and re-queues the
    /// moved lanes with their original ids.
    pub(crate) fn adopt(
        &mut self,
        tenant: TenantId,
        ctx: usize,
        plane: Arc<CompiledFabric>,
        handoff: TenantHandoff,
    ) -> Result<(), ServiceError> {
        self.planes[ctx] = Some(plane);
        self.tenants.insert(tenant, handoff.state);
        self.seed_slot(ctx)?;
        if let Some(batch) = handoff.batch {
            self.queue.install(ctx, batch);
        }
        Ok(())
    }

    /// Absorbs a sweep's usage ledger into the engine's tenant states —
    /// the coordinator calls this during the merge, in shard order.
    pub(crate) fn absorb_usage(&mut self, ledger: &UsageLedger<TenantId>) {
        for (tenant, delta) in ledger.entries() {
            if let Some(state) = self.tenants.get_mut(tenant) {
                state.usage.absorb(delta);
            }
        }
    }

    /// Executes the pending batches of this shard's `active` slots — each
    /// `(context, occupant)` precomputed by the coordinator — in CSS
    /// schedule order, reordered for minimum broadcast toggles under
    /// [`OptimizeMode::Optimized`]. Engine-local state (sequencer, queue,
    /// registers, scratch) mutates in place; everything externally visible
    /// is returned in the [`SweepOutcome`] for the coordinator's
    /// deterministic merge. CSS switch energy is charged to the tenant
    /// switched in, alongside the *baseline* toggles the naive ascending
    /// order would have charged (so each bill carries what the optimizer
    /// saved; see [`mcfpga_cost::attribution`]).
    ///
    /// A slot's batch is removed from the queue only *after* its pass
    /// succeeds — a failed pass records a [`SlotFault`], keeps its requests
    /// queued, and moves on to the next context, so no issued [`RequestId`]
    /// is ever silently dropped and no slot blocks its neighbours.
    ///
    /// Never returns `Err`: a *structural* failure (a broken schedule
    /// domain or plane invariant) stops the sweep but is carried in
    /// [`SweepOutcome::error`] **alongside everything already executed** —
    /// slots completed before the failure consumed their batches, so
    /// discarding their responses would break queue conservation.
    pub fn run_sweep(
        &mut self,
        active: &[(usize, TenantId)],
        optimize: OptimizeMode,
        matrix: &CostMatrix,
    ) -> SweepOutcome {
        let mut out = SweepOutcome::default();
        if let Err(e) = self.sweep_into(active, optimize, matrix, &mut out) {
            out.error = Some(e);
        }
        out
    }

    /// [`run_sweep`](Self::run_sweep)'s body, writing incrementally into
    /// `out` so an early return loses nothing already executed.
    fn sweep_into(
        &mut self,
        active: &[(usize, TenantId)],
        optimize: OptimizeMode,
        matrix: &CostMatrix,
        out: &mut SweepOutcome,
    ) -> Result<(), ServiceError> {
        if active.is_empty() {
            return Ok(());
        }
        let contexts = self.seq.contexts();
        let active_ctxs: Vec<usize> = active.iter().map(|(ctx, _)| *ctx).collect();
        let naive = Schedule::active_sweep(contexts, &active_ctxs)?;
        // the counterfactual: per-context toggles of the naive ascending
        // walk from the broadcast's current position (each active context
        // appears exactly once in a sweep, so a map by context is sound)
        let start = self.seq.current();
        let baseline: Vec<(usize, usize)> = naive
            .as_slice()
            .iter()
            .copied()
            .zip(matrix.step_costs(Some(start), naive.as_slice())?)
            .collect();
        let schedule = self.seq.plan_sweep_with(&naive, optimize, matrix)?;
        for ctx in schedule.iter() {
            let Some(batch) = self.queue.slot(ctx) else {
                continue;
            };
            let tenant = active
                .iter()
                .find(|(c, _)| *c == ctx)
                .map(|(_, t)| *t)
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: self.shard,
                    ctx,
                })?;
            let plane = self.planes[ctx]
                .clone()
                .ok_or(ServiceError::SlotNotProgrammed {
                    shard: self.shard,
                    ctx,
                })?;
            // the CSS broadcast swaps the active plane; its toggles are
            // charged at switch time — the broadcast network spent that
            // energy whether or not the pass below resolves
            let toggles = self.seq.step_to(ctx)?;
            let charge = out.usage.charge(tenant);
            charge.css_toggles += toggles;
            charge.css_toggles_baseline += baseline
                .iter()
                .find(|(c, _)| *c == ctx)
                .map_or(toggles, |(_, cost)| *cost);
            // stream registers: every bound `reg:*` input reads the
            // tenant's word from its previous pass (0 before the first) —
            // lane-aligned, so lane `l` of pass `p+1` consumes the state
            // lane `l` of pass `p` produced. A request that drove the name
            // explicitly wins (the batch entry resolves first), which is
            // how a caller seeds stream state by hand.
            let binds = plane.plane(ctx)?.input_binds();
            let tenant_regs = &self.tenant_state(tenant)?.regs;
            let mut lane_inputs = batch.lane_inputs();
            for (_, name) in binds {
                if name.starts_with(REG_PREFIX) && !lane_inputs.iter().any(|(n, _)| n == name) {
                    lane_inputs.push((name.as_str(), tenant_regs.get(name).unwrap_or(0)));
                }
            }
            let scratch = self.scratch.get_or_insert_with(|| plane.new_state());
            let outs = match plane.eval_batch_into(ctx, &lane_inputs, scratch) {
                Ok(outs) => outs,
                Err(e) => {
                    out.faults.push(SlotFault {
                        tenant,
                        shard: self.shard,
                        ctx,
                        error: e.into(),
                    });
                    continue;
                }
            };
            // resolve the register file before consuming the batch: from
            // here to the demux below nothing may fail, or taken requests
            // would vanish unanswered (existence was already checked by
            // the read above, so this cannot practically fail)
            let tenant_regs = &mut self
                .tenants
                .get_mut(&tenant)
                .ok_or(ServiceError::UnknownTenant(tenant.index()))?
                .regs;
            let taken = self
                .queue
                .take(ctx)
                .expect("slot was non-empty and the pass just succeeded");
            out.usage.charge(tenant).passes += 1;
            // `reg:*` outputs are state, not answers: harvest them into the
            // register file; only the visible outputs demux into responses.
            // One Arc per visible name, shared by all the pass's responses —
            // demuxing a full 64-lane batch allocates no strings
            let mut visible: Vec<(Arc<str>, u64)> = Vec::with_capacity(outs.len());
            for (name, word) in &outs {
                if name.starts_with(REG_PREFIX) {
                    tenant_regs.set(name, *word);
                } else {
                    visible.push((Arc::from(name.as_str()), *word));
                }
            }
            for (lane, (request, owner)) in taken.tickets.iter().enumerate() {
                out.responses.push(Response {
                    request: *request,
                    tenant: *owner,
                    outputs: visible
                        .iter()
                        .map(|(n, word)| (Arc::clone(n), (word >> lane) & 1 == 1))
                        .collect(),
                });
            }
            // hand the emptied buffers back to the slot (cleared, capacity
            // kept) so steady-state flushes re-allocate nothing
            self.queue.recycle(ctx, taken);
        }
        Ok(())
    }
}

// A future `Rc`, raw pointer or other non-thread-safe field anywhere in
// the engine's ownership tree must fail the *build*, not a code review:
// the parallel executor moves `&mut ShardEngine` across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardEngine>();
    assert_send_sync::<SweepOutcome>();
    assert_send_sync::<ServiceError>();
};
