//! The QoS streaming front-end: admission control, backpressure, and
//! deadline-aware flush timing over a [`ShardedService`].
//!
//! Until now traffic entered the service through synchronous
//! [`ShardedService::submit`] plus an explicit
//! [`drain`](ShardedService::drain) — fine for tests, wrong for a runtime
//! serving millions of users: a slow tenant's queue grows without bound, a
//! latency-sensitive tenant waits behind a half-full lane batch, and
//! nothing meters who may submit how fast. A [`FrontendDriver`] puts a
//! per-tenant **request stream** in front of every slot:
//!
//! * **QoS classes** ([`QosClass`]). A [`LatencySensitive`] stream
//!   triggers *early partial-chunk flushes*: [`pump`] predicts, from the
//!   stream's observed arrival rate, whether waiting for more lanes would
//!   carry the head request past its deadline, and if so flushes the
//!   partial batch immediately through
//!   [`ShardedService::flush_tenants`] — the partial-width entry point
//!   into the existing parallel drain path. A [`Throughput`] stream waits
//!   for a full batch (`min(lane width, queue capacity)` lanes) before
//!   flushing, maximizing vectors per pass.
//! * **Admission control**. Every stream's queue is *bounded*:
//!   [`offer`] returns a typed [`FrontendError::Backpressure`] when the
//!   queue is at capacity instead of growing it, and a typed
//!   [`FrontendError::Rejected`] when a token-bucket rate limit
//!   ([`RateLimit`]) is exhausted or the request arrives already past its
//!   deadline. Rejections are never silent: every outcome is counted in
//!   the stream's [`FrontendUsage`] and billed through
//!   [`mcfpga_cost::attribution`].
//! * **Deadlines**. An admitted request carries an absolute virtual-clock
//!   deadline (explicit, or the stream's default budget). A request still
//!   *queued in the front-end* when its deadline passes is removed on the
//!   next [`pump`] and surfaced as a typed [`FrontendEvent::Expired`] —
//!   so an admitted request is always flushed by its deadline or expired
//!   with a typed error, never silently late. Once flushed into the
//!   service, completion is guaranteed (the service conserves requests).
//! * **Virtual clock**. The driver never reads wall time: the caller owns
//!   time via [`advance`], so every test and bench is deterministic —
//!   latency is measured in virtual-clock cycles and is bit-for-bit
//!   reproducible at any executor thread count.
//! * **Observability**. Every admission outcome is mirrored into the
//!   wrapped service's [`Telemetry`] as deterministic `frontend_*`
//!   counters and virtual-cycle histograms, and every request's
//!   front-end hops become spans — `Admitted` (backfilled at its arrival
//!   cycle once the service mints the [`RequestId`]) and `Flushed`,
//!   plus ticket-keyed `Expired`/`Fault` for requests that never earned
//!   an id — so [`trace`](FrontendDriver::trace) replays the full
//!   admitted→…→demuxed lifecycle.
//!
//! The flow per request: `offer` (admit / backpressure / reject) → bounded
//! stream queue → `pump` (expire, then flush-decision per stream) →
//! [`ShardedService::submit`] + [`flush_tenants`] → [`FrontendEvent`]s.
//!
//! [`LatencySensitive`]: QosClass::LatencySensitive
//! [`Throughput`]: QosClass::Throughput
//! [`offer`]: FrontendDriver::offer
//! [`pump`]: FrontendDriver::pump
//! [`advance`]: FrontendDriver::advance
//! [`flush_tenants`]: ShardedService::flush_tenants
//!
//! ```
//! use mcfpga_device::TechParams;
//! use mcfpga_fabric::netlist_ir::generators;
//! use mcfpga_fabric::FabricParams;
//! use mcfpga_service::frontend::{FrontendDriver, FrontendEvent, StreamPolicy};
//! use mcfpga_service::ShardedService;
//!
//! let svc = ShardedService::new(1, FabricParams::default(), TechParams::default())?;
//! let mut fe = FrontendDriver::new(svc);
//! let t = fe.admit("wire", &generators::wire_lanes(1).unwrap())?;
//! // a latency-sensitive stream: up to 8 queued, 4-cycle deadline budget
//! fe.open_stream(t, StreamPolicy::latency_sensitive(8, 4))?;
//! let ticket = fe.offer(t, &[("in0", true)], None)?;
//! // the deadline (now + 4) is near and the arrival rate is unknown, so
//! // the very next pump flushes the single-lane partial batch
//! let events = fe.pump()?;
//! match &events[0] {
//!     FrontendEvent::Completed { ticket: tk, outputs, latency, .. } => {
//!         assert_eq!(*tk, ticket);
//!         assert_eq!(*latency, 0, "flushed on the same virtual cycle");
//!         assert!(outputs[0].1);
//!     }
//!     other => panic!("expected completion, got {other:?}"),
//! }
//! # Ok::<(), mcfpga_service::frontend::FrontendError>(())
//! ```

use crate::batch::{RequestId, Response};
use crate::registry::TenantId;
use crate::service::{ShardedService, SlotFault};
use crate::ServiceError;
use mcfpga_cost::attribution::{render_frontend_billing, FrontendUsage};
use mcfpga_fabric::LogicNetlist;
use mcfpga_telemetry::{
    ticket_key, Counter, Gauge, Histogram, MetricClass, SpanEvent, SpanKind, Telemetry,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Offers received, every outcome included ([`MetricClass::Deterministic`]).
pub const FRONTEND_OFFERED_METRIC: &str = "frontend_offered";
/// Offers admitted into a stream queue ([`MetricClass::Deterministic`]).
pub const FRONTEND_ADMITTED_METRIC: &str = "frontend_admitted";
/// Offers refused by a full stream queue ([`MetricClass::Deterministic`]).
pub const FRONTEND_REJECTED_BACKPRESSURE_METRIC: &str = "frontend_rejected_backpressure";
/// Offers rejected by a token bucket ([`MetricClass::Deterministic`]).
pub const FRONTEND_REJECTED_RATE_METRIC: &str = "frontend_rejected_rate";
/// Offers rejected dead-on-arrival ([`MetricClass::Deterministic`]).
pub const FRONTEND_REJECTED_DEADLINE_METRIC: &str = "frontend_rejected_deadline";
/// Tickets resolved as completed ([`MetricClass::Deterministic`]).
pub const FRONTEND_COMPLETED_METRIC: &str = "frontend_completed";
/// Tickets expired while queued ([`MetricClass::Deterministic`]).
pub const FRONTEND_EXPIRED_METRIC: &str = "frontend_expired";
/// Tickets the service refused at submit ([`MetricClass::Deterministic`]).
pub const FRONTEND_FAILED_METRIC: &str = "frontend_failed";
/// Requests flushed into the service, awaiting responses
/// ([`MetricClass::Deterministic`] gauge).
pub const FRONTEND_INFLIGHT_METRIC: &str = "frontend_inflight";
/// log2 histogram of arrival→completion virtual cycles
/// ([`MetricClass::Deterministic`]).
pub const FRONTEND_LATENCY_METRIC: &str = "frontend_latency_cycles";
/// log2 histogram of arrival→flush virtual cycles
/// ([`MetricClass::Deterministic`]).
pub const FRONTEND_QUEUE_WAIT_METRIC: &str = "frontend_queue_wait_cycles";

/// The front-end's slice of the service telemetry registry. Everything is
/// measured in virtual-clock cycles or admission counts, so every metric
/// is [`MetricClass::Deterministic`]: bit-identical at any executor
/// thread count, and at any lane width as long as stream capacities bound
/// the batch width (the chaos-replay gate enforces exactly that).
#[derive(Debug, Clone)]
struct FrontendMetrics {
    offered: Counter,
    admitted: Counter,
    rejected_backpressure: Counter,
    rejected_rate: Counter,
    rejected_deadline: Counter,
    completed: Counter,
    expired: Counter,
    failed: Counter,
    inflight: Gauge,
    latency_cycles: Histogram,
    queue_wait_cycles: Histogram,
}

impl FrontendMetrics {
    fn register(telemetry: &Telemetry) -> Self {
        let r = telemetry.registry();
        let det = MetricClass::Deterministic;
        FrontendMetrics {
            offered: r.counter(FRONTEND_OFFERED_METRIC, det),
            admitted: r.counter(FRONTEND_ADMITTED_METRIC, det),
            rejected_backpressure: r.counter(FRONTEND_REJECTED_BACKPRESSURE_METRIC, det),
            rejected_rate: r.counter(FRONTEND_REJECTED_RATE_METRIC, det),
            rejected_deadline: r.counter(FRONTEND_REJECTED_DEADLINE_METRIC, det),
            completed: r.counter(FRONTEND_COMPLETED_METRIC, det),
            expired: r.counter(FRONTEND_EXPIRED_METRIC, det),
            failed: r.counter(FRONTEND_FAILED_METRIC, det),
            inflight: r.gauge(FRONTEND_INFLIGHT_METRIC, det),
            latency_cycles: r.histogram(FRONTEND_LATENCY_METRIC, det),
            queue_wait_cycles: r.histogram(FRONTEND_QUEUE_WAIT_METRIC, det),
        }
    }
}

/// The service class of one tenant's request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Deadline-driven: [`FrontendDriver::pump`] flushes a *partial*
    /// lane batch early whenever waiting for more arrivals is predicted
    /// to carry the head request past its deadline.
    LatencySensitive,
    /// Efficiency-driven: flushes only when a full batch
    /// (`min(lane width, queue capacity)` lanes) has accumulated, so
    /// every pass serves as many vectors as possible.
    Throughput,
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QosClass::LatencySensitive => write!(f, "latency-sensitive"),
            QosClass::Throughput => write!(f, "throughput"),
        }
    }
}

/// A deterministic token-bucket rate limit, in integer virtual-clock
/// arithmetic (no floats, so refill is bit-for-bit reproducible).
///
/// The bucket holds up to `burst` tokens and gains `refill_num` tokens
/// every `refill_den` cycles (fractional rates are exact: tokens are
/// stored scaled by `refill_den`). Each admitted request spends one
/// token; an empty bucket rejects with
/// [`RejectReason::RateLimited`] naming the cycles until a token exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity in whole tokens (the largest admissible burst).
    pub burst: u64,
    /// Tokens refilled per `refill_den` cycles.
    pub refill_num: u64,
    /// Refill period in cycles (must be non-zero).
    pub refill_den: u64,
}

impl RateLimit {
    /// `tokens` per `cycles` cycles, with a burst allowance of `burst`.
    #[must_use]
    pub fn per_cycles(tokens: u64, cycles: u64, burst: u64) -> Self {
        RateLimit {
            burst,
            refill_num: tokens,
            refill_den: cycles,
        }
    }
}

/// Everything that shapes one tenant's stream: class, queue bound,
/// default deadline budget, and optional rate limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPolicy {
    /// The stream's QoS class.
    pub class: QosClass,
    /// Maximum queued (admitted, not yet flushed) requests; an offer
    /// beyond this is refused with [`FrontendError::Backpressure`].
    pub capacity: usize,
    /// Default *relative* deadline (cycles from arrival) applied when an
    /// offer passes no explicit deadline. `None` means no deadline.
    pub deadline_budget: Option<u64>,
    /// Optional token-bucket admission rate limit.
    pub rate: Option<RateLimit>,
}

impl StreamPolicy {
    /// A latency-sensitive stream: bounded at `capacity`, every request
    /// due `deadline_budget` cycles after it arrives.
    #[must_use]
    pub fn latency_sensitive(capacity: usize, deadline_budget: u64) -> Self {
        StreamPolicy {
            class: QosClass::LatencySensitive,
            capacity,
            deadline_budget: Some(deadline_budget),
            rate: None,
        }
    }

    /// A throughput stream: bounded at `capacity`, no deadlines — it
    /// waits for full batches.
    #[must_use]
    pub fn throughput(capacity: usize) -> Self {
        StreamPolicy {
            class: QosClass::Throughput,
            capacity,
            deadline_budget: None,
            rate: None,
        }
    }

    /// The same policy with a token-bucket rate limit attached.
    #[must_use]
    pub fn with_rate(mut self, rate: RateLimit) -> Self {
        self.rate = Some(rate);
        self
    }
}

/// Opaque handle of one *admitted* front-end request. Minted by
/// [`FrontendDriver::offer`] on success only (a refused offer burns
/// nothing), resolved exactly once by a [`FrontendEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// The raw ticket number (admission order, starting at 0).
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tkt#{}", self.0)
    }
}

/// Why an offer was rejected outright (distinct from
/// [`FrontendError::Backpressure`], which invites a retry once the queue
/// drains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The stream's token bucket is empty. `retry_cycles` is how many
    /// cycles until at least one token has refilled.
    RateLimited {
        /// Cycles until the bucket next holds a whole token.
        retry_cycles: u64,
    },
    /// The request's deadline already passed when it was offered — it
    /// could never be served in time, so admission refuses it instead of
    /// queueing doomed work.
    DeadlinePassed {
        /// The dead-on-arrival deadline.
        deadline: u64,
        /// The virtual clock at the offer.
        now: u64,
    },
}

/// Errors from the front-end's admission and configuration surface.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// The tenant has no open stream.
    NoStream(TenantId),
    /// [`FrontendDriver::open_stream`] called twice for one tenant.
    StreamExists(TenantId),
    /// A stream policy that cannot work (zero capacity, zero-period
    /// rate limit).
    BadPolicy(String),
    /// The stream's bounded queue is full. Not a failure of the request —
    /// the producer should slow down and retry; nothing was enqueued.
    Backpressure {
        /// The saturated stream's tenant.
        tenant: TenantId,
        /// Requests currently queued (== capacity).
        queued: usize,
        /// The stream's configured bound.
        capacity: usize,
    },
    /// The offer was rejected by admission control (rate limit or
    /// dead-on-arrival deadline); see [`RejectReason`].
    Rejected {
        /// The rejecting stream's tenant.
        tenant: TenantId,
        /// Why.
        reason: RejectReason,
    },
    /// Lane width (or another service knob) cannot change while requests
    /// sit in front-end queues — flush or let them expire first.
    QueuesNotEmpty {
        /// Requests currently queued across all streams.
        queued: usize,
    },
    /// An error from the underlying service.
    Service(ServiceError),
}

impl From<ServiceError> for FrontendError {
    fn from(e: ServiceError) -> Self {
        FrontendError::Service(e)
    }
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::NoStream(t) => write!(f, "tenant {t} has no open stream"),
            FrontendError::StreamExists(t) => write!(f, "tenant {t} already has a stream"),
            FrontendError::BadPolicy(s) => write!(f, "bad stream policy: {s}"),
            FrontendError::Backpressure {
                tenant,
                queued,
                capacity,
            } => write!(
                f,
                "backpressure: {tenant}'s stream holds {queued}/{capacity} requests"
            ),
            FrontendError::Rejected { tenant, reason } => match reason {
                RejectReason::RateLimited { retry_cycles } => write!(
                    f,
                    "rejected: {tenant} rate-limited, retry in {retry_cycles} cycles"
                ),
                RejectReason::DeadlinePassed { deadline, now } => write!(
                    f,
                    "rejected: deadline {deadline} already passed at cycle {now}"
                ),
            },
            FrontendError::QueuesNotEmpty { queued } => {
                write!(f, "{queued} requests still queued in front-end streams")
            }
            FrontendError::Service(e) => write!(f, "service: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// One resolved front-end request, returned by
/// [`FrontendDriver::pump`] / [`flush_all`](FrontendDriver::flush_all).
/// Every admitted [`Ticket`] produces exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendEvent {
    /// The request was flushed and served.
    Completed {
        /// The admitted request's ticket.
        ticket: Ticket,
        /// The service-level request id it rode.
        request: RequestId,
        /// The serving tenant.
        tenant: TenantId,
        /// Named output values, demuxed from the request's lane.
        outputs: Vec<(Arc<str>, bool)>,
        /// Virtual cycles from arrival ([`FrontendDriver::offer`]) to
        /// completion — the end-to-end QoS latency.
        latency: u64,
        /// The virtual cycle the request left the front-end queue for the
        /// service. For a deadlined request this never exceeds the
        /// deadline: a request that cannot flush in time expires instead.
        flushed: u64,
    },
    /// The request's deadline passed while it was still queued in the
    /// front-end — it was removed unserved. The typed late-error half of
    /// the deadline contract.
    Expired {
        /// The expired request's ticket.
        ticket: Ticket,
        /// Its stream's tenant.
        tenant: TenantId,
        /// The missed deadline.
        deadline: u64,
        /// The virtual clock when expiry was detected.
        now: u64,
    },
    /// The service refused the request at submit time (e.g. an input
    /// vector not driving every bound input). The request is resolved —
    /// it will not be retried.
    Failed {
        /// The failed request's ticket.
        ticket: Ticket,
        /// Its stream's tenant.
        tenant: TenantId,
        /// The service's refusal.
        error: ServiceError,
    },
    /// A response for a request submitted *directly* on the inner
    /// service (bypassing the front-end). Surfaced so mixed use never
    /// drops a response; purely front-end workloads never see it.
    PassThrough {
        /// The unmatched service response.
        response: Response,
    },
}

/// One queued (admitted, not yet flushed) request.
#[derive(Debug, Clone)]
struct QueuedRequest {
    ticket: Ticket,
    inputs: Vec<(String, bool)>,
    /// Absolute virtual-clock deadline, if any.
    deadline: Option<u64>,
    /// Virtual cycle the request was admitted.
    arrived: u64,
}

/// One tenant's stream state.
#[derive(Debug, Clone)]
struct Stream {
    tenant: TenantId,
    policy: StreamPolicy,
    queue: VecDeque<QueuedRequest>,
    /// Token bucket level, scaled by `rate.refill_den` (integer-exact).
    tokens_scaled: u64,
    /// Clock of the last bucket refill.
    refilled_at: u64,
    /// EWMA of the inter-arrival gap, in Q8 fixed point (`gap × 256`).
    /// `None` until two arrivals have been observed — explicit, because
    /// `Some(0)` is a *legitimate* estimate (a same-cycle burst: requests
    /// arrive instantly). A zero-valued sentinel would make the first
    /// nonzero gap after a burst reset the estimator instead of blending.
    gap_ewma_q8: Option<u64>,
    last_arrival: Option<u64>,
    /// Requests flushed into the service, awaiting responses.
    inflight: usize,
    usage: FrontendUsage,
}

impl Stream {
    fn new(tenant: TenantId, policy: StreamPolicy, now: u64) -> Self {
        let tokens_scaled = policy
            .rate
            .map_or(0, |r| r.burst.saturating_mul(r.refill_den));
        Stream {
            tenant,
            policy,
            queue: VecDeque::new(),
            tokens_scaled,
            refilled_at: now,
            gap_ewma_q8: None,
            last_arrival: None,
            inflight: 0,
            usage: FrontendUsage::default(),
        }
    }

    /// Brings the token bucket up to `now` (integer-exact, saturating at
    /// the burst capacity).
    fn refill(&mut self, now: u64) {
        if let Some(rate) = self.policy.rate {
            let elapsed = now - self.refilled_at;
            let cap = rate.burst.saturating_mul(rate.refill_den);
            self.tokens_scaled = self
                .tokens_scaled
                .saturating_add(elapsed.saturating_mul(rate.refill_num))
                .min(cap);
            self.refilled_at = now;
        }
    }

    /// How many lanes one flush of this stream targets.
    fn batch_width(&self, lane_width: usize) -> usize {
        lane_width.min(self.policy.capacity).max(1)
    }

    /// Predicted cycles until `missing` more requests arrive, from the
    /// observed inter-arrival EWMA. Unknown rate (fewer than two
    /// arrivals) predicts "forever", which makes deadline-holding streams
    /// flush immediately rather than gamble.
    fn predicted_fill_wait(&self, missing: u64) -> u64 {
        if missing == 0 {
            return 0;
        }
        match self.gap_ewma_q8 {
            None => u64::MAX / 2,
            Some(gap) => (gap.saturating_mul(missing)) >> 8,
        }
    }
}

/// Metadata of one request handed to the service, keyed by its
/// [`RequestId`] until the response arrives.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    stream: usize,
    ticket: Ticket,
    arrived: u64,
    flushed: u64,
}

/// The QoS streaming front-end over a [`ShardedService`]. See the
/// [module docs](self) for the model and a runnable example.
#[derive(Debug)]
pub struct FrontendDriver {
    svc: ShardedService,
    /// Streams in registration order — every per-stream scan walks this
    /// order, so front-end behavior is deterministic.
    streams: Vec<Stream>,
    /// Virtual clock, in cycles. Advanced only by the caller.
    now: u64,
    next_ticket: u64,
    /// Requests flushed into the service, awaiting their responses.
    inflight: HashMap<RequestId, Inflight>,
    metrics: FrontendMetrics,
}

impl Clone for FrontendDriver {
    /// The clone gets the wrapped service's fresh [`Telemetry`] (zeroed
    /// metrics, empty trace ring) with the front-end's own metrics
    /// re-registered and the virtual clock pushed down — queue contents
    /// and admission state carry over, history does not.
    fn clone(&self) -> Self {
        let svc = self.svc.clone();
        let metrics = FrontendMetrics::register(svc.telemetry());
        svc.telemetry().set_cycle(self.now);
        metrics.inflight.set(self.inflight.len() as i64);
        FrontendDriver {
            svc,
            streams: self.streams.clone(),
            now: self.now,
            next_ticket: self.next_ticket,
            inflight: self.inflight.clone(),
            metrics,
        }
    }
}

impl FrontendDriver {
    /// Wraps `svc` in a front-end with an empty stream table and the
    /// virtual clock at 0.
    #[must_use]
    pub fn new(svc: ShardedService) -> Self {
        let metrics = FrontendMetrics::register(svc.telemetry());
        FrontendDriver {
            svc,
            streams: Vec::new(),
            now: 0,
            next_ticket: 0,
            inflight: HashMap::new(),
            metrics,
        }
    }

    /// The wrapped service, read-only (billing, registry, diagnostics).
    #[must_use]
    pub fn service(&self) -> &ShardedService {
        &self.svc
    }

    /// The wrapped service, mutable — for operations the front-end does
    /// not mediate (admission, migration, evacuation, chaos hooks).
    /// Submitting directly here bypasses admission control; such
    /// requests' responses surface as [`FrontendEvent::PassThrough`].
    pub fn service_mut(&mut self) -> &mut ShardedService {
        &mut self.svc
    }

    /// Admits a tenant on the wrapped service (convenience passthrough;
    /// the stream still needs [`open_stream`](Self::open_stream)).
    pub fn admit(&mut self, name: &str, netlist: &LogicNetlist) -> Result<TenantId, FrontendError> {
        Ok(self.svc.admit(name, netlist)?)
    }

    /// The virtual clock, in cycles.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the virtual clock. Time never advances on its own — the
    /// caller owns it, which is what keeps every test wall-time-free. The
    /// clock is pushed down into the service [`Telemetry`], so spans the
    /// service records during a flush carry the front-end's cycle.
    pub fn advance(&mut self, cycles: u64) {
        self.now = self.now.saturating_add(cycles);
        self.svc.telemetry().set_cycle(self.now);
    }

    /// The wrapped service's telemetry (the front-end publishes its
    /// `frontend_*` metrics and lifecycle spans there, so one registry
    /// covers the whole node).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        self.svc.telemetry()
    }

    /// Every recorded span for `request`, in virtual-clock timeline
    /// order — the front-end's `Admitted`/`Flushed` hops interleaved with
    /// the service's `Queued`→`Planned`→`Evaluated`→`Applied`→`Demuxed`.
    #[must_use]
    pub fn trace(&self, request: RequestId) -> Vec<SpanEvent> {
        self.svc.trace(request)
    }

    /// Opens `tenant`'s request stream under `policy`. One stream per
    /// tenant; the policy is validated here so admission never has to.
    pub fn open_stream(
        &mut self,
        tenant: TenantId,
        policy: StreamPolicy,
    ) -> Result<(), FrontendError> {
        // surface unknown tenants now, not at first offer
        self.svc.registry().tenant(tenant)?;
        if self.stream_index(tenant).is_some() {
            return Err(FrontendError::StreamExists(tenant));
        }
        if policy.capacity == 0 {
            return Err(FrontendError::BadPolicy(
                "stream capacity must be at least 1".into(),
            ));
        }
        if let Some(rate) = policy.rate {
            if rate.refill_den == 0 {
                return Err(FrontendError::BadPolicy(
                    "rate limit refill period must be non-zero".into(),
                ));
            }
        }
        self.streams.push(Stream::new(tenant, policy, self.now));
        Ok(())
    }

    /// One tenant's stream policy, if a stream is open.
    #[must_use]
    pub fn stream_policy(&self, tenant: TenantId) -> Option<&StreamPolicy> {
        self.stream_index(tenant).map(|i| &self.streams[i].policy)
    }

    /// Offers one single-vector request to `tenant`'s stream.
    ///
    /// Admission control runs in order: unknown stream →
    /// dead-on-arrival deadline ([`FrontendError::Rejected`]) → bounded
    /// queue ([`FrontendError::Backpressure`]) → token bucket
    /// ([`FrontendError::Rejected`]; checked last so a backpressured
    /// offer burns no token). On success the request is queued with its
    /// absolute deadline — `deadline` verbatim, or `now +
    /// deadline_budget` from the policy, or none — and a fresh
    /// [`Ticket`] is returned. Every outcome increments the stream's
    /// [`FrontendUsage`] counters.
    pub fn offer(
        &mut self,
        tenant: TenantId,
        inputs: &[(&str, bool)],
        deadline: Option<u64>,
    ) -> Result<Ticket, FrontendError> {
        let now = self.now;
        let idx = self
            .stream_index(tenant)
            .ok_or(FrontendError::NoStream(tenant))?;
        let stream = &mut self.streams[idx];
        stream.usage.offered += 1;
        self.metrics.offered.inc();
        let deadline = deadline.or_else(|| {
            stream
                .policy
                .deadline_budget
                .map(|budget| now.saturating_add(budget))
        });
        if let Some(d) = deadline {
            if d < now {
                stream.usage.rejected_deadline += 1;
                self.metrics.rejected_deadline.inc();
                return Err(FrontendError::Rejected {
                    tenant,
                    reason: RejectReason::DeadlinePassed { deadline: d, now },
                });
            }
        }
        if stream.queue.len() >= stream.policy.capacity {
            stream.usage.rejected_backpressure += 1;
            self.metrics.rejected_backpressure.inc();
            return Err(FrontendError::Backpressure {
                tenant,
                queued: stream.queue.len(),
                capacity: stream.policy.capacity,
            });
        }
        if let Some(rate) = stream.policy.rate {
            stream.refill(now);
            if stream.tokens_scaled < rate.refill_den {
                stream.usage.rejected_rate += 1;
                self.metrics.rejected_rate.inc();
                let needed = rate.refill_den - stream.tokens_scaled;
                let retry_cycles = if rate.refill_num == 0 {
                    u64::MAX
                } else {
                    needed.div_ceil(rate.refill_num)
                };
                return Err(FrontendError::Rejected {
                    tenant,
                    reason: RejectReason::RateLimited { retry_cycles },
                });
            }
            stream.tokens_scaled -= rate.refill_den;
            stream.usage.rate_tokens_spent += 1;
        }
        // admitted: update the arrival-rate estimator (EWMA, α = 1/8).
        // The gap is widened to Q8 with a saturating multiply — a virtual
        // clock is free to jump by more than 2^56 cycles, and `<< 8`
        // would silently wrap such a gap to a tiny estimate. Saturated
        // blend terms likewise: the estimator pins at "effectively
        // forever" instead of wrapping.
        if let Some(last) = stream.last_arrival {
            let gap_q8 = (now - last).saturating_mul(256);
            stream.gap_ewma_q8 = Some(match stream.gap_ewma_q8 {
                None => gap_q8,
                Some(ewma) => ewma.saturating_mul(7).saturating_add(gap_q8) / 8,
            });
        }
        stream.last_arrival = Some(now);
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        stream.queue.push_back(QueuedRequest {
            ticket,
            inputs: inputs.iter().map(|(n, v)| ((*n).to_string(), *v)).collect(),
            deadline,
            arrived: now,
        });
        stream.usage.admitted += 1;
        self.metrics.admitted.inc();
        Ok(ticket)
    }

    /// One driver iteration: expires overdue queued requests, decides
    /// which streams to flush (class- and arrival-rate-aware), hands
    /// their batches to the service, executes the touched slots through
    /// the parallel drain path, and returns every resolved request as a
    /// [`FrontendEvent`].
    ///
    /// Flush decision per stream, in registration order:
    /// * any class flushes when a full batch has accumulated;
    /// * a [`QosClass::LatencySensitive`] stream also flushes when the
    ///   head request's deadline is due — `deadline ≤ now +
    ///   predicted_fill_wait`, where the wait is estimated from the
    ///   stream's inter-arrival EWMA (no estimate yet → flush now) — or
    ///   when the head request carries no deadline at all;
    /// * a stream with requests already in the service (a faulted slot
    ///   keeps them queued there) is re-flushed every pump, so repaired
    ///   tenants complete without new traffic.
    ///
    /// With nothing queued, nothing in flight and nothing due, a pump is
    /// a pure no-op: no service call, no clock movement, no events.
    pub fn pump(&mut self) -> Result<Vec<FrontendEvent>, FrontendError> {
        self.pump_inner(false)
    }

    /// Flushes **everything** queued in every stream regardless of class
    /// or deadline (after the same expiry pass as [`pump`](Self::pump)),
    /// then drains the whole service. The end-of-run path: after it, no
    /// request is left in a front-end queue, and every ticket whose slot
    /// is healthy has resolved.
    ///
    /// A slot whose service-side batch is full (backlogged behind a
    /// fault) needs one drain before its stream's remaining requests can
    /// submit, so this iterates flush rounds until the queues are empty
    /// — or a round makes no progress (a still-faulted slot: its
    /// requests stay safely queued for after the repair).
    pub fn flush_all(&mut self) -> Result<Vec<FrontendEvent>, FrontendError> {
        let mut events = self.pump_inner(true)?;
        loop {
            let queued = self.queued_requests();
            if queued == 0 {
                break;
            }
            let round = self.pump_inner(true)?;
            let stalled = self.queued_requests() == queued && round.is_empty();
            events.extend(round);
            if stalled {
                break;
            }
        }
        Ok(events)
    }

    fn pump_inner(&mut self, force: bool) -> Result<Vec<FrontendEvent>, FrontendError> {
        let now = self.now;
        let lane_width = self.svc.lane_width();
        let mut events = Vec::new();
        // 1. expiry: a queued request whose deadline has passed is
        // removed with a typed event, never silently served late
        for stream in &mut self.streams {
            let mut i = 0;
            while i < stream.queue.len() {
                let overdue = stream.queue[i].deadline.is_some_and(|d| d < now);
                if overdue {
                    let req = stream.queue.remove(i).expect("index checked");
                    stream.usage.expired += 1;
                    self.metrics.expired.inc();
                    let deadline = req.deadline.expect("overdue implies a deadline");
                    // ticket-keyed: an expired request never earned a
                    // service RequestId, the ticket is all it ever had
                    self.svc.telemetry().span_at(
                        SpanKind::Expired,
                        ticket_key(req.ticket.value()),
                        now,
                        (now - deadline) as i64,
                    );
                    events.push(FrontendEvent::Expired {
                        ticket: req.ticket,
                        tenant: stream.tenant,
                        deadline,
                        now,
                    });
                } else {
                    i += 1;
                }
            }
        }
        // 2. flush decision + submission, stream registration order
        for idx in 0..self.streams.len() {
            let stream = &self.streams[idx];
            let width = stream.batch_width(lane_width);
            let full = stream.queue.len() >= width;
            let due = force
                || full
                || match stream.policy.class {
                    QosClass::Throughput => false,
                    QosClass::LatencySensitive => stream.queue.front().is_some_and(|head| {
                        head.deadline.is_none_or(|d| {
                            let missing = (width - stream.queue.len()) as u64;
                            d <= now.saturating_add(stream.predicted_fill_wait(missing))
                        })
                    }),
                };
            if !due {
                continue;
            }
            // flow-control window: never hold more than one queue's worth
            // of a stream's requests inside the service. A faulted slot
            // stops resolving, so without this cap its service-side batch
            // would grow until the lane budget itself refused
            // (`SlotBacklogged`) — a limit that depends on the configured
            // lane width. Capping at the stream's own capacity propagates
            // the stall upstream as front-end backpressure instead,
            // identically at every lane width.
            let window = stream.policy.capacity.saturating_sub(stream.inflight);
            // hand over at most one batch per pump (force hands over all)
            let handover = if force {
                self.streams[idx].queue.len().min(window)
            } else {
                width.min(self.streams[idx].queue.len()).min(window)
            };
            for _ in 0..handover {
                let stream = &mut self.streams[idx];
                let head = stream.queue.front().expect("handover bounded by len");
                let refs: Vec<(&str, bool)> =
                    head.inputs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                match self.svc.submit(stream.tenant, &refs) {
                    Ok(request) => {
                        let req = stream.queue.pop_front().expect("head existed");
                        stream.inflight += 1;
                        // now the ticket has a RequestId, backfill its
                        // admission hop at the cycle it actually arrived
                        // (detail: deadline slack at admission, -1 = none)
                        let slack = req.deadline.map_or(-1, |d| (d - req.arrived) as i64);
                        let telemetry = self.svc.telemetry();
                        telemetry.span_at(SpanKind::Admitted, request.value(), req.arrived, slack);
                        telemetry.span_at(
                            SpanKind::Flushed,
                            request.value(),
                            now,
                            (now - req.arrived) as i64,
                        );
                        self.inflight.insert(
                            request,
                            Inflight {
                                stream: idx,
                                ticket: req.ticket,
                                arrived: req.arrived,
                                flushed: now,
                            },
                        );
                    }
                    // a poisoned slot's backlog clears after repair —
                    // keep the rest queued and retry on a later pump
                    Err(ServiceError::SlotBacklogged { .. }) => break,
                    Err(error) => {
                        let req = stream.queue.pop_front().expect("head existed");
                        stream.usage.failed += 1;
                        self.metrics.failed.inc();
                        self.svc.telemetry().span_at(
                            SpanKind::Fault,
                            ticket_key(req.ticket.value()),
                            now,
                            stream.tenant.index() as i64,
                        );
                        events.push(FrontendEvent::Failed {
                            ticket: req.ticket,
                            tenant: stream.tenant,
                            error,
                        });
                    }
                }
            }
        }
        // 3. execute: every stream with in-flight work is flushed — the
        // just-submitted batches, plus faulted slots being retried
        let flush_list: Vec<TenantId> = self
            .streams
            .iter()
            .filter(|s| s.inflight > 0)
            .map(|s| s.tenant)
            .collect();
        if flush_list.is_empty() && !(force && self.svc.pending_requests() > 0) {
            self.metrics.inflight.set(self.inflight.len() as i64);
            return Ok(events);
        }
        let responses = if force {
            self.svc.drain()?
        } else {
            self.svc.flush_tenants(&flush_list)?
        };
        for response in responses {
            match self.inflight.remove(&response.request) {
                Some(meta) => {
                    let stream = &mut self.streams[meta.stream];
                    stream.inflight -= 1;
                    stream.usage.completed += 1;
                    self.metrics.completed.inc();
                    self.metrics.latency_cycles.observe(now - meta.arrived);
                    self.metrics
                        .queue_wait_cycles
                        .observe(meta.flushed - meta.arrived);
                    events.push(FrontendEvent::Completed {
                        ticket: meta.ticket,
                        request: response.request,
                        tenant: response.tenant,
                        outputs: response.outputs,
                        latency: now - meta.arrived,
                        flushed: meta.flushed,
                    });
                }
                None => events.push(FrontendEvent::PassThrough { response }),
            }
        }
        self.metrics.inflight.set(self.inflight.len() as i64);
        Ok(events)
    }

    /// Requests queued in front-end streams (admitted, not yet flushed).
    #[must_use]
    pub fn queued_requests(&self) -> usize {
        self.streams.iter().map(|s| s.queue.len()).sum()
    }

    /// Requests flushed into the service, awaiting responses.
    #[must_use]
    pub fn inflight_requests(&self) -> usize {
        self.inflight.len()
    }

    /// Sets the wrapped service's lane width. Refused while any stream
    /// holds queued requests: a width change rebuilds the service's
    /// queue partitions, and the front-end's flush decisions are sized
    /// by the width, so changing it mid-stream would silently reshape
    /// admitted work. (The service additionally refuses while *its own*
    /// queues hold requests.)
    pub fn set_lane_width(&mut self, width: usize) -> Result<(), FrontendError> {
        let queued = self.queued_requests();
        if queued > 0 {
            return Err(FrontendError::QueuesNotEmpty { queued });
        }
        Ok(self.svc.set_lane_width(width)?)
    }

    /// Removes and returns the service's per-slot execution faults (see
    /// [`ShardedService::take_faults`]). Faulted slots keep their
    /// requests queued in the service; the front-end retries them on
    /// every pump, so a [`ShardedService::repair_plane`] is all recovery
    /// takes.
    pub fn take_faults(&mut self) -> Vec<SlotFault> {
        self.svc.take_faults()
    }

    /// One stream's admission counters.
    pub fn frontend_usage(&self, tenant: TenantId) -> Result<FrontendUsage, FrontendError> {
        self.stream_index(tenant)
            .map(|i| self.streams[i].usage)
            .ok_or(FrontendError::NoStream(tenant))
    }

    /// Markdown admission/QoS billing table over every open stream, in
    /// registration order (see
    /// [`mcfpga_cost::attribution::render_frontend_billing`]).
    #[must_use]
    pub fn frontend_billing_report(&self) -> String {
        let rows: Vec<(String, FrontendUsage)> = self
            .streams
            .iter()
            .map(|s| {
                let name = self
                    .svc
                    .registry()
                    .tenant(s.tenant)
                    .map(|r| r.name.clone())
                    .unwrap_or_else(|_| s.tenant.to_string());
                (format!("{name} ({})", s.policy.class), s.usage)
            })
            .collect();
        render_frontend_billing(&rows)
    }

    fn stream_index(&self, tenant: TenantId) -> Option<usize> {
        self.streams.iter().position(|s| s.tenant == tenant)
    }
}

// The front-end rides inside `ShardedService`-carrying types that cross
// threads in benches; keep it structurally Send+Sync like the service.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FrontendDriver>();
    assert_send_sync::<FrontendEvent>();
    assert_send_sync::<FrontendError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_device::TechParams;
    use mcfpga_fabric::netlist_ir::generators;
    use mcfpga_fabric::FabricParams;

    fn driver_with_stream(policy: StreamPolicy) -> (FrontendDriver, TenantId) {
        let svc = ShardedService::new(1, FabricParams::default(), TechParams::default()).unwrap();
        let mut fe = FrontendDriver::new(svc);
        let nl = generators::wire_lanes(1).unwrap();
        let t = fe.admit("ewma", &nl).unwrap();
        fe.open_stream(t, policy).unwrap();
        (fe, t)
    }

    /// A same-cycle burst legitimately drives the estimate toward 0; the
    /// next nonzero gap must *blend* into it (α = 1/8), not reset the
    /// estimator as the old `== 0` "unset" sentinel did.
    #[test]
    fn same_cycle_burst_then_gap_blends_instead_of_resetting() {
        let (mut fe, t) = driver_with_stream(StreamPolicy::throughput(64));
        fe.advance(100);
        // arrivals at the same cycle: gaps of 0 pull the EWMA to exactly 0
        for _ in 0..40 {
            fe.offer(t, &[("in0", true)], None).unwrap();
        }
        assert_eq!(fe.streams[0].gap_ewma_q8, Some(0), "burst estimate is 0");
        // a 800-cycle gap after the burst: blended, not adopted wholesale
        fe.advance(800);
        fe.offer(t, &[("in0", true)], None).unwrap();
        let q8 = fe.streams[0].gap_ewma_q8.unwrap();
        assert_eq!(q8, (800 * 256) / 8, "one blend step from 0, not a reset");
        assert!(q8 < 800 * 256, "estimate must stay below the raw gap");
    }

    /// Before two arrivals the estimator is explicitly unset and
    /// deadline-holding streams treat the fill wait as "forever".
    #[test]
    fn estimator_unset_until_second_arrival() {
        let (mut fe, t) = driver_with_stream(StreamPolicy::throughput(64));
        assert_eq!(fe.streams[0].gap_ewma_q8, None);
        assert_eq!(fe.streams[0].predicted_fill_wait(3), u64::MAX / 2);
        fe.offer(t, &[("in0", true)], None).unwrap();
        assert_eq!(fe.streams[0].gap_ewma_q8, None, "one arrival: still unset");
        fe.advance(16);
        fe.offer(t, &[("in0", true)], None).unwrap();
        assert_eq!(fe.streams[0].gap_ewma_q8, Some(16 * 256));
        assert_eq!(fe.streams[0].predicted_fill_wait(0), 0);
        assert_eq!(fe.streams[0].predicted_fill_wait(2), 32);
    }

    /// A virtual-clock jump beyond 2^56 cycles used to overflow the
    /// `<< 8` widening and wrap the estimate to a tiny value; it must
    /// saturate instead.
    #[test]
    fn huge_clock_jump_saturates_instead_of_wrapping() {
        let (mut fe, t) = driver_with_stream(StreamPolicy::throughput(64));
        fe.offer(t, &[("in0", true)], None).unwrap();
        fe.advance(u64::MAX / 2);
        fe.offer(t, &[("in0", true)], None).unwrap();
        let q8 = fe.streams[0].gap_ewma_q8.unwrap();
        assert!(
            q8 >= (u64::MAX / 2) / 8,
            "gap must saturate high, not wrap low (got {q8})"
        );
        // and the estimator keeps functioning afterwards
        fe.advance(10);
        fe.offer(t, &[("in0", true)], None).unwrap();
        assert!(fe.streams[0].gap_ewma_q8.unwrap() < q8 || q8 == u64::MAX);
    }

    /// End-to-end consequence of the burst bug: after a same-cycle burst,
    /// a latency-sensitive stream's flush decision uses the (near-zero)
    /// predicted fill wait — a generous future deadline holds the partial
    /// batch instead of flushing it immediately as the reset bug did.
    #[test]
    fn ls_stream_holds_partial_batch_after_burst() {
        let (mut fe, t) = driver_with_stream(StreamPolicy::latency_sensitive(64, 1_000_000));
        fe.advance(5);
        for _ in 0..8 {
            fe.offer(t, &[("in0", true)], None).unwrap();
        }
        assert_eq!(fe.streams[0].gap_ewma_q8, Some(0));
        // predicted fill wait ~0 and the deadline is far: nothing is due
        let events = fe.pump().unwrap();
        assert!(
            events.is_empty(),
            "burst-rate stream with a far deadline must wait for its batch"
        );
        assert_eq!(fe.streams[0].queue.len(), 8, "requests stay queued");
    }
}
