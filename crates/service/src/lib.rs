//! # mcfpga-service — multi-tenant batched execution over the compiled fabric
//!
//! The paper's point is that **one fabric serves many logical circuits**,
//! switching between them in a single cycle. The compiled engine
//! (`mcfpga_fabric::compiled`) makes each context cheap to evaluate — up
//! to 256 input vectors per chunked bit-parallel pass — and this crate
//! exploits that to serve *concurrent workloads*: many tenants, each
//! resident in one context slot, their single-vector requests coalesced
//! into wide multi-lane passes.
//!
//! Five layers:
//!
//! * [`registry::TenantRegistry`] — admits per-tenant programmed
//!   configurations, mapping each tenant to a `(shard, context)` slot in
//!   round-robin order. A [`registry::PlaneCache`] keyed by the fabric's
//!   [`context_digest`](mcfpga_fabric::Fabric::context_digest) means
//!   re-admitting an identical bitstream never recompiles, and compiled
//!   planes are `Arc`-shared — installing one in an engine slot clones a
//!   pointer, never a plane.
//! * [`batch::BatchQueue`] — **one shard's** partition of the pending
//!   work: per-context [`LaneBatch`]es coalescing single-vector requests,
//!   flushed the moment every configured lane fills (256 by default; see
//!   [`ShardedService::set_lane_width`]) or on an explicit
//!   [`ShardedService::drain`], with each tenant's responses demuxed back
//!   out of the lane chunks. Request ids stay service-global through the
//!   coordinator's single [`batch::RequestIdSource`].
//! * [`engine::ShardEngine`] — one shard's complete execution state:
//!   compiled planes, its own
//!   [`ContextSequencer`](mcfpga_fabric::ContextSequencer), queue
//!   partition, and the usage + stream registers of its tenants. Engines
//!   share no execution state, so sweeps of different shards run
//!   concurrently.
//! * [`service::ShardedService`] — the thin coordinator: registry, plane
//!   cache, policies, and the [`executor::ParallelExecutor`] whose
//!   **persistent work-stealing worker pool** evaluates the per-context
//!   steps that [`drain`](ShardedService::drain) plans. Every step carries
//!   its `(shard, sweep-position)` merge key and results are applied in
//!   that key order, making output bit-for-bit identical at any thread
//!   count (`MCFPGA_THREADS`, or [`ShardedService::set_threads`]) and any
//!   lane width. Sweeps are reordered for
//!   minimum broadcast toggles under [`OptimizeMode::Optimized`] (the
//!   default; see [`mcfpga_css::optimize`]) and CSS broadcast energy is
//!   attributed per tenant via [`mcfpga_cost::attribution`] at plan time,
//!   including what the reordering saved versus the naive order.
//!   Admission slots are chosen by a [`PlacementPolicy`]: round-robin, or
//!   energy-aware marginal-sweep-cost placement with plane-cache
//!   affinity.
//! * [`frontend::FrontendDriver`] — the QoS streaming front-end: bounded
//!   per-tenant request streams with priority/deadline classes
//!   ([`QosClass`]), typed backpressure and admission rejections,
//!   token-bucket rate limits, and a virtual-clock pump that picks flush
//!   timing from observed arrival rates — flushing latency-sensitive
//!   partial batches early through
//!   [`flush_tenants`](ShardedService::flush_tenants) while throughput
//!   streams wait for lane-full.
//!
//! Tenants are **mobile**: `checkpoint_tenant` snapshots one at a
//! context-switch boundary into a [`TenantCheckpoint`] (versioned wire
//! format, see [`mcfpga_migrate`]), `restore_tenant` resumes it elsewhere
//! bit-for-bit, `migrate_tenant` moves it live preserving request ids,
//! and `evacuate_shard` clears a faulted/hot shard wholesale — with the
//! overhead billed per tenant. Outputs a tenant names `reg:*` are stream
//! registers: captured after each pass and re-driven (lane-aligned) on
//! its next pass, so sequential designs work and their state migrates.
//!
//! [`LaneBatch`]: mcfpga_fabric::compiled::LaneBatch
//!
//! ```
//! use mcfpga_device::TechParams;
//! use mcfpga_fabric::netlist_ir::generators;
//! use mcfpga_fabric::FabricParams;
//! use mcfpga_service::ShardedService;
//!
//! let mut svc = ShardedService::new(1, FabricParams::default(), TechParams::default())?;
//! let parity = svc.admit("parity", &generators::parity_tree(3)?)?;
//!
//! // Two independent single-vector requests share one fabric pass.
//! svc.submit(parity, &[("x0", true), ("x1", true), ("x2", false)])?;
//! svc.submit(parity, &[("x0", true), ("x1", false), ("x2", false)])?;
//! let responses = svc.drain()?;
//! assert_eq!(responses.len(), 2);
//! assert!(!responses[0].outputs[0].1); // parity(1,1,0) = 0
//! assert!(responses[1].outputs[0].1); // parity(1,0,0) = 1
//! assert_eq!(svc.usage(parity)?.passes, 1, "both requests rode one pass");
//! # Ok::<(), mcfpga_service::ServiceError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod engine;
pub mod executor;
pub mod frontend;
pub mod placement;
pub mod registry;
pub mod service;

pub use batch::{BatchQueue, RequestId, RequestIdSource, Response};
pub use engine::ShardEngine;
pub use executor::{
    ExecutorConfig, ParallelExecutor, ThreadSource, SPAWN_EVENTS_METRIC, TASKS_EXECUTED_METRIC,
    TASKS_STOLEN_METRIC, TASKS_TOTAL_METRIC, THREADS_ENV, WORKERS_SPAWNED_METRIC,
};
pub use frontend::{
    FrontendDriver, FrontendError, FrontendEvent, QosClass, RateLimit, RejectReason, StreamPolicy,
    Ticket,
};
pub use placement::{best_slot_scored, netlist_fingerprint, PlacementPolicy, SlotScore};
pub use registry::{Placement, PlaneCache, TenantId, TenantRegistry};
pub use service::{ShardedService, SlotFault};

// the sweep-ordering knob lives in `mcfpga_css::optimize`; re-exported here
// because it is half of the service's policy surface
pub use mcfpga_css::OptimizeMode;
// the checkpoint model lives in `mcfpga_migrate`; re-exported because
// checkpoint/restore/migrate/evacuate are service operations
pub use mcfpga_migrate::{MigrateError, PendingBatch, TenantCheckpoint, FORMAT_VERSION};

use mcfpga_css::CssError;
use mcfpga_fabric::FabricError;

/// Errors from the multi-tenant execution service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Every `(shard, context)` slot already hosts a tenant.
    CapacityExhausted {
        /// Number of shards in the service.
        shards: usize,
        /// Context slots per shard.
        contexts: usize,
    },
    /// Service configured with zero shards or a context-less fabric.
    BadConfig(String),
    /// Referenced a tenant id the registry never issued.
    UnknownTenant(usize),
    /// A request or execution touched a slot with no programmed plane.
    SlotNotProgrammed {
        /// Shard index.
        shard: usize,
        /// Context slot.
        ctx: usize,
    },
    /// A submitted request did not drive one of its tenant's bound
    /// inputs. Checked per request at submit time: batched evaluation sees
    /// the union of all lanes' input names, so an unchecked omission would
    /// silently read as 0 whenever a sibling request drives the name.
    MissingInput {
        /// The undriven input signal.
        name: String,
    },
    /// A submit hit a slot whose lanes are already full because an
    /// earlier flush failed and left its batch queued. Recover with a
    /// corrected [`ShardedService::drain`] or
    /// [`ShardedService::discard_pending`].
    SlotBacklogged {
        /// Shard index.
        shard: usize,
        /// Context slot.
        ctx: usize,
    },
    /// Referenced a shard index the service does not have.
    NoSuchShard {
        /// The requested shard.
        shard: usize,
        /// Number of shards in the service.
        shards: usize,
    },
    /// A checkpoint/restore/migration operation failed (version mismatch,
    /// missing plane, no destination slot, …).
    Migrate(MigrateError),
    /// Underlying fabric error (routing, compilation, evaluation).
    Fabric(FabricError),
    /// Underlying CSS error (schedule construction, generator).
    Css(CssError),
}

impl From<FabricError> for ServiceError {
    fn from(e: FabricError) -> Self {
        ServiceError::Fabric(e)
    }
}

impl From<CssError> for ServiceError {
    fn from(e: CssError) -> Self {
        ServiceError::Css(e)
    }
}

impl From<MigrateError> for ServiceError {
    fn from(e: MigrateError) -> Self {
        ServiceError::Migrate(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::CapacityExhausted { shards, contexts } => {
                write!(f, "all {shards}×{contexts} tenant slots are occupied")
            }
            ServiceError::BadConfig(s) => write!(f, "bad service config: {s}"),
            ServiceError::UnknownTenant(id) => write!(f, "unknown tenant id {id}"),
            ServiceError::SlotNotProgrammed { shard, ctx } => {
                write!(f, "slot (shard {shard}, ctx {ctx}) has no programmed plane")
            }
            ServiceError::MissingInput { name } => {
                write!(f, "request does not drive bound input '{name}'")
            }
            ServiceError::SlotBacklogged { shard, ctx } => {
                write!(
                    f,
                    "slot (shard {shard}, ctx {ctx}) holds a full unflushed batch; \
                     drain or discard_pending first"
                )
            }
            ServiceError::NoSuchShard { shard, shards } => {
                write!(f, "shard {shard} out of range (service has {shards})")
            }
            ServiceError::Migrate(e) => write!(f, "migration: {e}"),
            ServiceError::Fabric(e) => write!(f, "fabric: {e}"),
            ServiceError::Css(e) => write!(f, "css: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}
