//! The hybrid multiple-valued/binary CSS (the paper's contribution, Figs.
//! 7–9).
//!
//! For each 4-context block `b` the generator broadcasts **four** five-valued
//! lines:
//!
//! | line            | value when block `b` active and `S0` matches | otherwise |
//! |-----------------|-----------------------------------------------|-----------|
//! | `S0·Vs`   (b)   | `Vs = (ctx mod 4) + 1`                         | 0         |
//! | `S0·¬Vs`  (b)   | `¬Vs = 5 − Vs`                                 | 0         |
//! | `¬S0·Vs`  (b)   | `Vs`                                           | 0         |
//! | `¬S0·¬Vs` (b)   | `¬Vs`                                          | 0         |
//!
//! The polarity pair (`S0` vs `¬S0`) makes the two FGMOSs of an MC-switch
//! mutually exclusive; the `Vs`/`¬Vs` pair lets a single *up*-threshold
//! select either the high-level or the low-level member of the polarity's
//! context pair. Level 0 is reserved for "gated off" — that is why the rail
//! is five-valued and why `CSS = 0` maps to `Vs = 1`, not 0.
//!
//! Block gating (the `b` in the table) is how "more context selection bits
//! such as S2 are merged into the hybrid MV/B-CSS without any overhead":
//! the AND with the block-select bits happens once, in the shared generator,
//! not in every switch.

use crate::CssError;
use mcfpga_mvl::{Level, Radix};

/// Identity of one broadcast line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineId {
    /// Which 4-context block the line serves.
    pub block: usize,
    /// Binary polarity the line is gated by: `true` = gated by `S0`,
    /// `false` = gated by `¬S0`.
    pub s0_polarity: bool,
    /// Rail carried: `false` = `Vs`, `true` = `¬Vs`.
    pub inverted: bool,
}

impl LineId {
    /// Human-readable name matching the paper's Fig. 7 captions, with the
    /// block suffixed when there is more than one.
    #[must_use]
    pub fn name(&self, blocks: usize) -> String {
        let pol = if self.s0_polarity { "S0" } else { "¬S0" };
        let rail = if self.inverted { "¬Vs" } else { "Vs" };
        if blocks > 1 {
            format!("{pol}·{rail}[b{}]", self.block)
        } else {
            format!("{pol}·{rail}")
        }
    }
}

/// Hybrid MV/B-CSS generator for `contexts` contexts (multiple of 4, ≤ 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridCssGen {
    contexts: usize,
    current: usize,
}

impl HybridCssGen {
    /// Contexts resolved per block by the MV rail.
    pub const BLOCK: usize = 4;

    /// Creates a generator parked at context 0.
    pub fn new(contexts: usize) -> Result<Self, CssError> {
        if contexts < 4 || !contexts.is_multiple_of(Self::BLOCK) || contexts > 64 {
            return Err(CssError::BadContextCount(contexts));
        }
        Ok(HybridCssGen {
            contexts,
            current: 0,
        })
    }

    /// Number of contexts.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Number of 4-context blocks.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.contexts / Self::BLOCK
    }

    /// The five-valued rail the lines live on.
    #[must_use]
    pub fn radix(&self) -> Radix {
        Radix::FIVE
    }

    /// Currently broadcast context.
    #[must_use]
    pub fn current(&self) -> usize {
        self.current
    }

    /// Switches the broadcast context.
    pub fn switch_to(&mut self, ctx: usize) -> Result<(), CssError> {
        if ctx >= self.contexts {
            return Err(CssError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            });
        }
        self.current = ctx;
        Ok(())
    }

    /// All broadcast lines, in a stable order:
    /// `(block 0: S0·Vs, S0·¬Vs, ¬S0·Vs, ¬S0·¬Vs), (block 1: …), …`.
    #[must_use]
    pub fn lines(&self) -> Vec<LineId> {
        let mut v = Vec::with_capacity(self.blocks() * 4);
        for block in 0..self.blocks() {
            for (s0_polarity, inverted) in
                [(true, false), (true, true), (false, false), (false, true)]
            {
                v.push(LineId {
                    block,
                    s0_polarity,
                    inverted,
                });
            }
        }
        v
    }

    /// Number of broadcast lines (`4 × blocks`).
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.blocks() * 4
    }

    /// The value on `line` for an explicit context (pure function; does not
    /// change generator state).
    pub fn line_value_at(&self, line: LineId, ctx: usize) -> Result<Level, CssError> {
        if ctx >= self.contexts {
            return Err(CssError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            });
        }
        if line.block >= self.blocks() {
            return Err(CssError::BadLine {
                block: line.block,
                blocks: self.blocks(),
            });
        }
        let block = ctx / Self::BLOCK;
        let s0 = ctx & 1 == 1;
        if block != line.block || s0 != line.s0_polarity {
            return Ok(Level::ZERO);
        }
        let vs = Level::encode_ctx(ctx % Self::BLOCK);
        Ok(if line.inverted {
            vs.invert(self.radix())
        } else {
            vs
        })
    }

    /// The value on `line` for the current context.
    pub fn line_value(&self, line: LineId) -> Result<Level, CssError> {
        self.line_value_at(line, self.current)
    }

    /// All line values for the current context, ordered like
    /// [`HybridCssGen::lines`].
    #[must_use]
    pub fn snapshot(&self) -> Vec<Level> {
        self.lines()
            .into_iter()
            .map(|l| self.line_value(l).expect("line enumerated from self"))
            .collect()
    }

    /// Broadcast-line toggle count between two contexts (dynamic-energy
    /// proxy; a line "toggles" when its level changes).
    pub fn toggles_between(&self, a: usize, b: usize) -> Result<usize, CssError> {
        let mut toggles = 0;
        for line in self.lines() {
            if self.line_value_at(line, a)? != self.line_value_at(line, b)? {
                toggles += 1;
            }
        }
        Ok(toggles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rules() {
        assert!(HybridCssGen::new(3).is_err());
        assert!(HybridCssGen::new(5).is_err());
        assert!(HybridCssGen::new(4).is_ok());
        assert!(HybridCssGen::new(8).is_ok());
        assert_eq!(HybridCssGen::new(8).unwrap().line_count(), 8);
    }

    /// The Fig. 7 waveform table, verbatim.
    #[test]
    #[allow(clippy::needless_range_loop)] // ctx indexes the expectation table
    fn fig7_values_4_contexts() {
        let gen = HybridCssGen::new(4).unwrap();
        let lines = gen.lines();
        // rows: S0·Vs, S0·¬Vs, ¬S0·Vs, ¬S0·¬Vs; columns: ctx 0..3
        let expected: [[u8; 4]; 4] = [[0, 2, 0, 4], [0, 3, 0, 1], [1, 0, 3, 0], [4, 0, 2, 0]];
        for (li, line) in lines.iter().enumerate() {
            for ctx in 0..4 {
                assert_eq!(
                    gen.line_value_at(*line, ctx).unwrap(),
                    Level::new(expected[li][ctx]),
                    "line {} ctx {ctx}",
                    line.name(1)
                );
            }
        }
    }

    #[test]
    fn output_is_mv_when_gate_high_else_zero() {
        // §3: "The output is same as the MV-CSS when the binary CSS is 1.
        // Otherwise, the output is 0."
        let gen = HybridCssGen::new(4).unwrap();
        for ctx in 0..4 {
            let s0 = ctx & 1 == 1;
            for line in gen.lines() {
                let v = gen.line_value_at(line, ctx).unwrap();
                if line.s0_polarity == s0 && !line.inverted {
                    assert_eq!(v, Level::encode_ctx(ctx));
                } else if line.s0_polarity != s0 {
                    assert_eq!(v, Level::ZERO);
                }
            }
        }
    }

    #[test]
    fn five_valuedness_gate_zero_distinct_from_mv_levels() {
        // Every live line value is ≥ 1 — level 0 unambiguously means
        // "gated off", which is the reason the rail needs five levels.
        let gen = HybridCssGen::new(8).unwrap();
        for ctx in 0..8 {
            for line in gen.lines() {
                let v = gen.line_value_at(line, ctx).unwrap();
                let live = line.block == ctx / 4 && line.s0_polarity == (ctx & 1 == 1);
                assert_eq!(!v.is_off(), live, "ctx {ctx} line {:?}", line);
            }
        }
    }

    #[test]
    fn block_gating_merges_high_bits() {
        // 8 contexts: lines of block 0 are all dead when ctx >= 4 and vice
        // versa — S2 has been merged into the broadcast, costing the switch
        // nothing.
        let gen = HybridCssGen::new(8).unwrap();
        for ctx in 4..8 {
            for line in gen.lines().into_iter().filter(|l| l.block == 0) {
                assert!(gen.line_value_at(line, ctx).unwrap().is_off());
            }
        }
        for ctx in 0..4 {
            for line in gen.lines().into_iter().filter(|l| l.block == 1) {
                assert!(gen.line_value_at(line, ctx).unwrap().is_off());
            }
        }
    }

    #[test]
    fn vs_and_nvs_always_complementary_when_live() {
        let gen = HybridCssGen::new(16).unwrap();
        for ctx in 0..16 {
            let block = ctx / 4;
            let pol = ctx & 1 == 1;
            let v = gen
                .line_value_at(
                    LineId {
                        block,
                        s0_polarity: pol,
                        inverted: false,
                    },
                    ctx,
                )
                .unwrap();
            let nv = gen
                .line_value_at(
                    LineId {
                        block,
                        s0_polarity: pol,
                        inverted: true,
                    },
                    ctx,
                )
                .unwrap();
            assert_eq!(v.value() + nv.value(), 5, "ctx {ctx}");
        }
    }

    #[test]
    fn snapshot_and_switch() {
        let mut gen = HybridCssGen::new(4).unwrap();
        gen.switch_to(1).unwrap();
        assert_eq!(gen.current(), 1);
        let snap = gen.snapshot();
        assert_eq!(snap.len(), 4);
        // ctx 1: S0=1, Vs=2 → lines [2, 3, 0, 0]
        assert_eq!(
            snap.iter().map(|l| l.value()).collect::<Vec<_>>(),
            vec![2, 3, 0, 0]
        );
        assert!(gen.switch_to(4).is_err());
    }

    #[test]
    fn toggle_counts() {
        let gen = HybridCssGen::new(4).unwrap();
        // ctx0 → ctx0: nothing toggles
        assert_eq!(gen.toggles_between(0, 0).unwrap(), 0);
        // ctx0 → ctx2 keeps polarity (both S0=0): only the ¬S0 pair moves
        assert_eq!(gen.toggles_between(0, 2).unwrap(), 2);
        // ctx0 → ctx1 flips polarity: all four lines change
        assert_eq!(gen.toggles_between(0, 1).unwrap(), 4);
    }

    #[test]
    fn line_names() {
        let l = LineId {
            block: 0,
            s0_polarity: true,
            inverted: true,
        };
        assert_eq!(l.name(1), "S0·¬Vs");
        assert_eq!(l.name(2), "S0·¬Vs[b0]");
    }
}
