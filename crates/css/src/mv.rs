//! Pure multiple-valued CSS (ref \[3\] of the paper).
//!
//! Within a 4-context block, the context id is broadcast directly as one of
//! four rail levels `{0,1,2,3}` — window literals over this rail select
//! contexts (Figs. 3–5). Beyond 4 contexts the scheme does **not** extend the
//! rail; instead binary block-select bits drive a per-switch doubling MUX
//! (Fig. 6), which is exactly the scaling overhead the hybrid scheme removes.

use crate::CssError;
use mcfpga_mvl::{Level, Radix};

/// MV-CSS source: 4-level rail for the in-block context plus binary
/// block-select bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvCss {
    contexts: usize,
    current: usize,
}

impl MvCss {
    /// Base block size resolved by the MV rail.
    pub const BLOCK: usize = 4;

    /// Creates a generator. `contexts` must be a multiple of 4 (1 block or
    /// more), at most 64.
    pub fn new(contexts: usize) -> Result<Self, CssError> {
        if contexts < 4 || !contexts.is_multiple_of(Self::BLOCK) || contexts > 64 {
            return Err(CssError::BadContextCount(contexts));
        }
        Ok(MvCss {
            contexts,
            current: 0,
        })
    }

    /// Number of contexts.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Number of 4-context blocks.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.contexts / Self::BLOCK
    }

    /// The MV rail's radix: four levels `{0..3}` (no gating level is needed
    /// because the MV-only scheme never collapses binary and MV on one wire).
    #[must_use]
    pub fn radix(&self) -> Radix {
        Radix::new(4)
    }

    /// Currently broadcast context.
    #[must_use]
    pub fn current(&self) -> usize {
        self.current
    }

    /// Switches to `ctx`.
    pub fn switch_to(&mut self, ctx: usize) -> Result<(), CssError> {
        if ctx >= self.contexts {
            return Err(CssError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            });
        }
        self.current = ctx;
        Ok(())
    }

    /// The MV rail level: the in-block context id `ctx mod 4` as a level.
    #[must_use]
    pub fn rail_level(&self) -> Level {
        Level::new((self.current % Self::BLOCK) as u8)
    }

    /// Which block is active.
    #[must_use]
    pub fn active_block(&self) -> usize {
        self.current / Self::BLOCK
    }

    /// Binary block-select bit `k` (these drive the Fig. 6 MUX tree).
    #[must_use]
    pub fn block_bit(&self, k: usize) -> bool {
        (self.active_block() >> k) & 1 == 1
    }

    /// Number of binary block-select bits.
    #[must_use]
    pub fn block_bits(&self) -> usize {
        let b = self.blocks();
        if b <= 1 {
            0
        } else {
            (usize::BITS - (b - 1).leading_zeros()) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rules() {
        assert!(MvCss::new(2).is_err());
        assert!(MvCss::new(6).is_err());
        assert!(MvCss::new(68).is_err());
        assert!(MvCss::new(4).is_ok());
        assert!(MvCss::new(8).is_ok());
    }

    #[test]
    fn rail_level_is_in_block_ctx() {
        let mut css = MvCss::new(8).unwrap();
        for ctx in 0..8 {
            css.switch_to(ctx).unwrap();
            assert_eq!(css.rail_level(), Level::new((ctx % 4) as u8));
            assert_eq!(css.active_block(), ctx / 4);
        }
    }

    #[test]
    fn block_bits_scale() {
        assert_eq!(MvCss::new(4).unwrap().block_bits(), 0);
        assert_eq!(MvCss::new(8).unwrap().block_bits(), 1);
        assert_eq!(MvCss::new(16).unwrap().block_bits(), 2);
        assert_eq!(MvCss::new(64).unwrap().block_bits(), 4);
    }

    #[test]
    fn block_bit_values() {
        let mut css = MvCss::new(16).unwrap();
        css.switch_to(13).unwrap(); // block 3 = 0b11
        assert!(css.block_bit(0));
        assert!(css.block_bit(1));
        css.switch_to(5).unwrap(); // block 1 = 0b01
        assert!(css.block_bit(0));
        assert!(!css.block_bit(1));
    }

    #[test]
    fn radix_is_four_valued() {
        assert_eq!(MvCss::new(4).unwrap().radix().levels(), 4);
    }
}
