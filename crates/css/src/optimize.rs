//! CSS schedule optimization: reorder a context sweep to minimize the
//! modeled broadcast toggles (and therefore dynamic switching energy).
//!
//! The paper's hybrid MV/binary CSS makes a context switch cheap, but *how
//! cheap* depends on which pair of contexts is being switched between: a
//! polarity flip (even ↔ odd context) toggles all four of a block's lines,
//! a same-polarity hop only two, and a block change retires one block's
//! pair while raising another's. A sweep that visits contexts in naive
//! ascending order pays the worst-case polarity flip on every step; a
//! reordered sweep visits same-polarity contexts back-to-back and pays the
//! flip once. Because every scheduled step evaluates its context plane
//! combinationally — independent of when its siblings run — any reordering
//! of a sweep is **output-equivalent**; only the broadcast energy changes.
//!
//! [`CostMatrix`] captures the pairwise transition cost for any CSS family
//! (constructors for the hybrid and binary generators are provided);
//! [`optimize_sweep`] reorders a sweep against it — exhaustively
//! (Held–Karp) when the sweep visits at most [`EXACT_LIMIT`] distinct
//! contexts, greedy nearest-neighbour above that — and never returns an
//! order costlier than the input.
//!
//! **Duplicate context ids collapse.** A sweep visits each context at most
//! once: duplicates in the input are deduplicated (keeping one visit), not
//! rejected — the same decision [`Schedule::active_sweep`] makes. Callers
//! that need a context executed twice schedule two sweeps.
//!
//! ```
//! use mcfpga_css::{optimize_sweep, CostMatrix, Schedule};
//!
//! // A 4-context hybrid fabric: the ascending sweep 0→1→2→3 flips the
//! // S0 polarity at every step (4 toggles each, 12 total); grouping the
//! // even contexts before the odd ones pays the flip only once (2+4+2).
//! let sweep = Schedule::active_sweep(4, &[0, 1, 2, 3])?;
//! let matrix = CostMatrix::hybrid(4)?;
//! let opt = optimize_sweep(&sweep, &matrix, Some(0))?;
//! assert_eq!((opt.naive_cost, opt.optimized_cost), (12, 8));
//!
//! // Output-equivalence is structural: the optimized sweep is a
//! // permutation of the same distinct contexts.
//! let mut visited = opt.schedule.as_slice().to_vec();
//! visited.sort_unstable();
//! assert_eq!(visited, vec![0, 1, 2, 3]);
//! # Ok::<(), mcfpga_css::CssError>(())
//! ```

use crate::{BinaryCss, CssError, HybridCssGen, Schedule};

/// Largest distinct-context count optimized exhaustively (Held–Karp,
/// `O(2^n · n²)`); sweeps visiting more distinct contexts fall back to
/// greedy nearest-neighbour.
pub const EXACT_LIMIT: usize = 8;

/// How a schedule-driven executor orders its context sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizeMode {
    /// Ascending context order — the naive active sweep.
    Naive,
    /// Each sweep is reordered by [`optimize_sweep`] to minimize modeled
    /// CSS toggles. Output-equivalent to [`Naive`](OptimizeMode::Naive);
    /// never costs more energy.
    #[default]
    Optimized,
}

/// Pairwise context-transition cost matrix (broadcast-wire toggles).
///
/// Row `a`, column `b` holds the modeled cost of switching the broadcast
/// from context `a` to context `b`. The diagonal is the cost of *staying*
/// (zero for every CSS family this crate models).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostMatrix {
    contexts: usize,
    cost: Vec<usize>,
}

impl CostMatrix {
    /// Builds a matrix by evaluating `f(from, to)` over the full domain.
    pub fn from_fn(
        contexts: usize,
        mut f: impl FnMut(usize, usize) -> usize,
    ) -> Result<Self, CssError> {
        if contexts == 0 {
            return Err(CssError::BadContextCount(0));
        }
        let mut cost = Vec::with_capacity(contexts * contexts);
        for a in 0..contexts {
            for b in 0..contexts {
                cost.push(f(a, b));
            }
        }
        Ok(CostMatrix { contexts, cost })
    }

    /// Toggle costs of the paper's hybrid MV/binary CSS
    /// ([`HybridCssGen::toggles_between`]); `contexts` must be a multiple
    /// of 4 in `4..=64`.
    pub fn hybrid(contexts: usize) -> Result<Self, CssError> {
        let gen = HybridCssGen::new(contexts)?;
        Self::from_fn(contexts, |a, b| {
            gen.toggles_between(a, b)
                .expect("domain enumerated from the generator")
        })
    }

    /// Hamming-distance costs of the conventional binary context word.
    /// The word is sized like the SRAM architecture's broadcast
    /// ([`BinaryCss`] over the next power of two ≥ 2), so the matrix
    /// matches what a binary sequencer charges per switch.
    pub fn binary(contexts: usize) -> Result<Self, CssError> {
        if contexts == 0 {
            return Err(CssError::BadContextCount(0));
        }
        // constructed only to validate the padded domain the costs model
        let _ = BinaryCss::new(contexts.next_power_of_two().max(2))?;
        Self::from_fn(contexts, |a, b| (a ^ b).count_ones() as usize)
    }

    /// Number of contexts in the domain.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Transition cost from context `a` to context `b`.
    pub fn cost(&self, a: usize, b: usize) -> Result<usize, CssError> {
        for ctx in [a, b] {
            if ctx >= self.contexts {
                return Err(CssError::ContextOutOfRange {
                    ctx,
                    contexts: self.contexts,
                });
            }
        }
        Ok(self.cost[a * self.contexts + b])
    }

    #[inline]
    fn at(&self, a: usize, b: usize) -> usize {
        self.cost[a * self.contexts + b]
    }

    /// Per-step transition costs of walking `seq`, optionally charging the
    /// entry transition from `start` to `seq[0]` (a `None` start charges
    /// the first step zero — the walk begins *on* `seq[0]`).
    pub fn step_costs(&self, start: Option<usize>, seq: &[usize]) -> Result<Vec<usize>, CssError> {
        if let Some(s) = start {
            self.cost(s, s)?;
        }
        let mut costs = Vec::with_capacity(seq.len());
        let mut cur = start;
        for &ctx in seq {
            costs.push(match cur {
                Some(c) => self.cost(c, ctx)?,
                None => {
                    self.cost(ctx, ctx)?;
                    0
                }
            });
            cur = Some(ctx);
        }
        Ok(costs)
    }

    /// Total transition cost of walking `seq` (sum of
    /// [`step_costs`](Self::step_costs)).
    pub fn path_cost(&self, start: Option<usize>, seq: &[usize]) -> Result<usize, CssError> {
        Ok(self.step_costs(start, seq)?.into_iter().sum())
    }
}

/// One optimized sweep: the reordered schedule and both modeled costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizedSweep {
    /// The reordered sweep — the same distinct contexts as the (deduped)
    /// input, each visited exactly once.
    pub schedule: Schedule,
    /// Modeled toggles of the *input* order (after duplicate collapse).
    pub naive_cost: usize,
    /// Modeled toggles of the returned order. Never exceeds
    /// [`naive_cost`](Self::naive_cost).
    pub optimized_cost: usize,
}

impl OptimizedSweep {
    /// Toggles saved over the input order (`naive_cost − optimized_cost`).
    #[must_use]
    pub fn saved(&self) -> usize {
        self.naive_cost - self.optimized_cost
    }
}

/// Reorders `sweep` to minimize total transition cost under `matrix`,
/// starting from the broadcast's current context `start` (`None` = the
/// first visited context is free, as in a fresh replay).
///
/// Duplicate context ids in `sweep` collapse to a single visit (see the
/// [module docs](self) for why this is the specified behaviour). The
/// search is exact (Held–Karp) when the sweep visits ≤ [`EXACT_LIMIT`]
/// distinct contexts and greedy nearest-neighbour above that; in both
/// regimes the result is compared against the deduplicated input order and
/// the cheaper one wins, so `optimized_cost ≤ naive_cost` **always** holds.
///
/// Errors when the sweep's domain differs from the matrix's, or when
/// `start`/any scheduled context is outside the matrix domain.
pub fn optimize_sweep(
    sweep: &Schedule,
    matrix: &CostMatrix,
    start: Option<usize>,
) -> Result<OptimizedSweep, CssError> {
    if sweep.contexts() != matrix.contexts() {
        return Err(CssError::DomainMismatch {
            schedule: sweep.contexts(),
            matrix: matrix.contexts(),
        });
    }
    if let Some(s) = start {
        matrix.cost(s, s)?;
    }
    // duplicates collapse, first occurrence kept (specified: dedup, not error)
    let mut nodes: Vec<usize> = Vec::new();
    for ctx in sweep.iter() {
        matrix.cost(ctx, ctx)?;
        if !nodes.contains(&ctx) {
            nodes.push(ctx);
        }
    }
    let naive_cost = matrix.path_cost(start, &nodes)?;
    let candidate = if nodes.len() <= 1 {
        nodes.clone()
    } else if nodes.len() <= EXACT_LIMIT {
        exact_order(&nodes, matrix, start)
    } else {
        greedy_order(&nodes, matrix, start)
    };
    let optimized_cost = matrix.path_cost(start, &candidate)?;
    // the optimizer is advisory: if a heuristic ever loses to the input
    // order, the input order ships — "never worse" is structural, not hoped
    let (seq, optimized_cost) = if optimized_cost <= naive_cost {
        (candidate, optimized_cost)
    } else {
        (nodes, naive_cost)
    };
    Ok(OptimizedSweep {
        schedule: Schedule::explicit(sweep.contexts(), seq)?,
        naive_cost,
        optimized_cost,
    })
}

/// Optimized cost of sweeping the context set `ctxs` from `start` — the
/// toggles [`optimize_sweep`]'s order would spend visiting every listed
/// context once. The shared scoring primitive of energy-aware *placement*
/// (marginal cost of a slot joining its shard's sweep) and of *migration*
/// billing (the broadcast realignment a restored tenant adds at its
/// destination). An empty set costs nothing.
pub fn sweep_cost(
    matrix: &CostMatrix,
    start: Option<usize>,
    ctxs: &[usize],
) -> Result<usize, CssError> {
    if ctxs.is_empty() {
        return Ok(0);
    }
    let sweep = Schedule::active_sweep(matrix.contexts(), ctxs)?;
    Ok(optimize_sweep(&sweep, matrix, start)?.optimized_cost)
}

/// Held–Karp minimum-cost Hamiltonian path over `nodes` (`2 ≤ n ≤ 8`):
/// `dp[mask][i]` = cheapest way to visit exactly the contexts in `mask`
/// ending on `nodes[i]`.
fn exact_order(nodes: &[usize], matrix: &CostMatrix, start: Option<usize>) -> Vec<usize> {
    let n = nodes.len();
    let full = (1usize << n) - 1;
    let mut dp = vec![usize::MAX; (1 << n) * n];
    let mut parent = vec![usize::MAX; (1 << n) * n];
    for i in 0..n {
        dp[(1 << i) * n + i] = start.map_or(0, |s| matrix.at(s, nodes[i]));
    }
    for mask in 1..=full {
        for last in 0..n {
            let cur = dp[mask * n + last];
            if cur == usize::MAX || mask & (1 << last) == 0 {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let nmask = mask | (1 << next);
                let cand = cur + matrix.at(nodes[last], nodes[next]);
                if cand < dp[nmask * n + next] {
                    dp[nmask * n + next] = cand;
                    parent[nmask * n + next] = last;
                }
            }
        }
    }
    let mut last = (0..n)
        .min_by_key(|&i| dp[full * n + i])
        .expect("n >= 2 nodes");
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    loop {
        order.push(nodes[last]);
        let p = parent[mask * n + last];
        if p == usize::MAX {
            break;
        }
        mask &= !(1 << last);
        last = p;
    }
    order.reverse();
    order
}

/// Greedy nearest-neighbour path: from `start` (or the cheapest-pair seed
/// when there is none), repeatedly hop to the cheapest unvisited context.
/// Ties break toward the lowest context id, so the result is deterministic.
fn greedy_order(nodes: &[usize], matrix: &CostMatrix, start: Option<usize>) -> Vec<usize> {
    let mut remaining: Vec<usize> = nodes.to_vec();
    remaining.sort_unstable();
    let mut order = Vec::with_capacity(nodes.len());
    let mut cur = start;
    while !remaining.is_empty() {
        let pick = match cur {
            Some(c) => remaining
                .iter()
                .enumerate()
                .min_by_key(|&(_, &ctx)| (matrix.at(c, ctx), ctx))
                .map(|(i, _)| i)
                .expect("remaining non-empty"),
            // no current context: seed on the lowest id (free first visit)
            None => 0,
        };
        let ctx = remaining.remove(pick);
        order.push(ctx);
        cur = Some(ctx);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_matrix_matches_generator() {
        let m = CostMatrix::hybrid(8).unwrap();
        let gen = HybridCssGen::new(8).unwrap();
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(m.cost(a, b).unwrap(), gen.toggles_between(a, b).unwrap());
            }
        }
        assert!(m.cost(8, 0).is_err());
    }

    #[test]
    fn binary_matrix_is_hamming() {
        let m = CostMatrix::binary(6).unwrap(); // padded to an 8-context word
        assert_eq!(m.cost(0, 5).unwrap(), 2);
        assert_eq!(m.cost(3, 3).unwrap(), 0);
        assert_eq!(m.cost(1, 4).unwrap(), 2);
        assert!(CostMatrix::binary(0).is_err());
    }

    #[test]
    fn path_and_step_costs() {
        let m = CostMatrix::hybrid(4).unwrap();
        assert_eq!(m.step_costs(Some(0), &[0, 2, 1]).unwrap(), vec![0, 2, 4]);
        assert_eq!(m.path_cost(Some(0), &[0, 2, 1]).unwrap(), 6);
        assert_eq!(m.path_cost(None, &[2, 1]).unwrap(), 4);
        assert_eq!(m.path_cost(None, &[]).unwrap(), 0);
        assert!(m.path_cost(Some(4), &[0]).is_err());
        assert!(m.path_cost(None, &[4]).is_err());
    }

    #[test]
    fn full_four_context_sweep_saves_a_third() {
        let sweep = Schedule::active_sweep(4, &[0, 1, 2, 3]).unwrap();
        let m = CostMatrix::hybrid(4).unwrap();
        let opt = optimize_sweep(&sweep, &m, Some(0)).unwrap();
        assert_eq!(opt.naive_cost, 12);
        assert_eq!(opt.optimized_cost, 8);
        assert_eq!(opt.saved(), 4);
        // permutation of the same contexts, each exactly once
        let mut v = opt.schedule.as_slice().to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
        // reported cost is the real cost of the returned order
        assert_eq!(
            m.path_cost(Some(0), opt.schedule.as_slice()).unwrap(),
            opt.optimized_cost
        );
    }

    #[test]
    fn duplicates_collapse_to_one_visit() {
        let dup = Schedule::explicit(4, vec![2, 0, 2, 0, 2]).unwrap();
        let m = CostMatrix::hybrid(4).unwrap();
        let opt = optimize_sweep(&dup, &m, Some(0)).unwrap();
        let mut v = opt.schedule.as_slice().to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![0, 2], "each context visited exactly once");
        // naive_cost is the cost of the *deduped* input order [2, 0]
        assert_eq!(opt.naive_cost, m.path_cost(Some(0), &[2, 0]).unwrap());
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let m = CostMatrix::hybrid(4).unwrap();
        let empty = Schedule::explicit(4, vec![]).unwrap();
        let opt = optimize_sweep(&empty, &m, Some(3)).unwrap();
        assert!(opt.schedule.is_empty());
        assert_eq!((opt.naive_cost, opt.optimized_cost), (0, 0));

        let one = Schedule::explicit(4, vec![2]).unwrap();
        let opt = optimize_sweep(&one, &m, Some(0)).unwrap();
        assert_eq!(opt.schedule.as_slice(), &[2]);
        assert_eq!(opt.optimized_cost, 2, "entry transition still charged");
    }

    #[test]
    fn greedy_regime_still_never_worse() {
        // 12 distinct contexts > EXACT_LIMIT → greedy path
        let m = CostMatrix::hybrid(12).unwrap();
        let sweep = Schedule::active_sweep(12, &(0..12).collect::<Vec<_>>()).unwrap();
        let opt = optimize_sweep(&sweep, &m, Some(0)).unwrap();
        assert!(opt.optimized_cost <= opt.naive_cost);
        assert!(
            opt.optimized_cost < opt.naive_cost,
            "ascending order flips polarity every step; greedy must beat it"
        );
        let mut v = opt.schedule.as_slice().to_vec();
        v.sort_unstable();
        assert_eq!(v, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn no_start_lets_the_first_visit_ride_free() {
        let m = CostMatrix::hybrid(4).unwrap();
        let sweep = Schedule::active_sweep(4, &[1, 3]).unwrap();
        // from ctx 0 both visits cost (0→1)=4 then (1→3)=2, or (0→3)=4, (3→1)=2
        let anchored = optimize_sweep(&sweep, &m, Some(0)).unwrap();
        assert_eq!(anchored.optimized_cost, 6);
        // with no anchor only the hop between them is charged
        let free = optimize_sweep(&sweep, &m, None).unwrap();
        assert_eq!(free.optimized_cost, 2);
    }

    #[test]
    fn domain_mismatch_is_rejected() {
        let m = CostMatrix::hybrid(4).unwrap();
        let sweep = Schedule::active_sweep(8, &[0, 5]).unwrap();
        assert!(matches!(
            optimize_sweep(&sweep, &m, None),
            Err(CssError::DomainMismatch {
                schedule: 8,
                matrix: 4
            })
        ));
    }

    #[test]
    fn exact_limit_boundary_uses_held_karp() {
        // exactly 8 distinct contexts: still exact; verify optimality by
        // brute force over all 8! orders
        let m = CostMatrix::hybrid(8).unwrap();
        let sweep = Schedule::active_sweep(8, &(0..8).collect::<Vec<_>>()).unwrap();
        let opt = optimize_sweep(&sweep, &m, Some(0)).unwrap();
        let mut best = usize::MAX;
        let mut perm: Vec<usize> = (0..8).collect();
        // Heap's algorithm, iterative
        let mut c = [0usize; 8];
        best = best.min(m.path_cost(Some(0), &perm).unwrap());
        let mut i = 0;
        while i < 8 {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                best = best.min(m.path_cost(Some(0), &perm).unwrap());
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        assert_eq!(opt.optimized_cost, best, "Held-Karp must be optimal");
    }
}
