//! Transistor-cost model of the MV/B-CSS generator (Fig. 8) and its
//! amortisation.
//!
//! The paper's argument is not that the generator is free, but that it is
//! **shared**: "Although the proposed MC-switch requires more complex
//! circuits for generating the context switching signal, they can be shared
//! among several MC-switches, and its overhead is negligible."
//!
//! This module makes that argument quantitative. The Fig. 8 circuit gates an
//! MV rail with a binary signal; per output line we model:
//!
//! * a transmission gate passing the MV rail (2 T),
//! * an nMOS pull-down forcing level 0 when gated off (1 T),
//!
//! plus per block: one binary inverter for `¬S0` (2 T) and one MV inverter
//! producing `¬Vs = 5 − Vs` (modelled at 6 T — a source-coupled pair with a
//! level-shifting load, consistent with the multiple-valued current-mode
//! circuits of ref \[2\]). These constants are *model assumptions* (the paper
//! does not give a transistor-level figure for its generator); the
//! amortisation conclusion is insensitive to them — see
//! [`GeneratorCost::overhead_per_switch`].

use crate::CssError;

/// Transistor-count breakdown of a hybrid CSS generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorCost {
    /// 4-context blocks served.
    pub blocks: usize,
    /// Transistors in output drivers (3 per line, 4 lines per block).
    pub driver_transistors: usize,
    /// Transistors in binary inverters (2 per block).
    pub binary_inverter_transistors: usize,
    /// Transistors in MV inverters (6 per block).
    pub mv_inverter_transistors: usize,
}

impl GeneratorCost {
    /// Per-line driver cost: transmission gate + pull-down.
    pub const DRIVER_T: usize = 3;
    /// Binary inverter cost.
    pub const BIN_INV_T: usize = 2;
    /// MV inverter (`¬Vs = 5 − Vs`) cost.
    pub const MV_INV_T: usize = 6;

    /// Cost model for a generator serving `contexts` contexts.
    pub fn for_contexts(contexts: usize) -> Result<Self, CssError> {
        if contexts < 4 || !contexts.is_multiple_of(4) || contexts > 64 {
            return Err(CssError::BadContextCount(contexts));
        }
        let blocks = contexts / 4;
        Ok(GeneratorCost {
            blocks,
            driver_transistors: blocks * 4 * Self::DRIVER_T,
            binary_inverter_transistors: blocks * Self::BIN_INV_T,
            mv_inverter_transistors: blocks * Self::MV_INV_T,
        })
    }

    /// Total generator transistors.
    #[must_use]
    pub fn total(&self) -> usize {
        self.driver_transistors + self.binary_inverter_transistors + self.mv_inverter_transistors
    }

    /// Amortised overhead per MC-switch when the generator is shared by
    /// `switches` switches (the paper's "negligible" claim, as a number).
    #[must_use]
    pub fn overhead_per_switch(&self, switches: usize) -> f64 {
        if switches == 0 {
            f64::INFINITY
        } else {
            self.total() as f64 / switches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_context_generator_cost() {
        let g = GeneratorCost::for_contexts(4).unwrap();
        assert_eq!(g.blocks, 1);
        assert_eq!(g.driver_transistors, 12);
        assert_eq!(g.binary_inverter_transistors, 2);
        assert_eq!(g.mv_inverter_transistors, 6);
        assert_eq!(g.total(), 20);
    }

    #[test]
    fn cost_scales_linearly_in_blocks() {
        let g4 = GeneratorCost::for_contexts(4).unwrap();
        let g16 = GeneratorCost::for_contexts(16).unwrap();
        assert_eq!(g16.total(), 4 * g4.total());
    }

    #[test]
    fn amortisation_is_negligible_at_fabric_scale() {
        // A small 10×10-SB fabric of 8×8 cells has 6400 cross-points; the
        // shared generator adds well under 0.01 transistors per switch —
        // "negligible" vs the 2-transistor switch itself.
        let g = GeneratorCost::for_contexts(4).unwrap();
        let per_switch = g.overhead_per_switch(6400);
        assert!(per_switch < 0.01 * 2.0_f64.max(1.0) * 2.0);
        assert!(per_switch < 0.1);
    }

    #[test]
    fn zero_switches_is_infinite_overhead() {
        let g = GeneratorCost::for_contexts(4).unwrap();
        assert!(g.overhead_per_switch(0).is_infinite());
    }

    #[test]
    fn rejects_bad_context_counts() {
        assert!(GeneratorCost::for_contexts(2).is_err());
        assert!(GeneratorCost::for_contexts(6).is_err());
        assert!(GeneratorCost::for_contexts(128).is_err());
    }
}
