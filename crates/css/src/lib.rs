//! # mcfpga-css — context-switching signal generation
//!
//! A multi-context FPGA broadcasts a **context switching signal** (CSS) to
//! every multi-context switch. This crate implements the three CSS families
//! the paper compares:
//!
//! * [`binary::BinaryCss`] — the conventional binary context word
//!   `S_{k-1} … S_1 S_0` (drives the SRAM-based MC-switch of Fig. 2).
//! * [`mv::MvCss`] — the pure multiple-valued CSS of ref \[3\]: the context id
//!   within a 4-context block is broadcast as one of four rail levels, and
//!   block-select bits stay binary (they drive the Fig. 6 doubling MUX).
//! * [`hybrid::HybridCssGen`] — **the paper's contribution**: the hybrid
//!   MV/binary CSS of Figs. 7–8. Per 4-context block, four five-valued
//!   broadcast lines carry `S0·Vs`, `S0·¬Vs`, `¬S0·Vs`, `¬S0·¬Vs`, where
//!   `Vs = (ctx mod 4) + 1`, `¬Vs = 5 − Vs`, and `·` is binary gating
//!   (output = MV value when the gate is 1, level 0 otherwise). Higher
//!   context bits are *merged into the gating* ("More context selection bits
//!   such as S2 are merged into the hybrid MV/B-CSS without any overhead"),
//!   so an 8-context fabric broadcasts 8 lines and the per-switch hardware
//!   stays two FGMOSs per 4-context block with **no MUX**.
//!
//! Supporting modules: [`schedule`] (context sequences), [`optimize`]
//! (sweep reordering against a pairwise transition-cost matrix — switching
//! energy minimization), [`waveform`] (sampled traces + ASCII/CSV rendering
//! for the Fig. 7 reproduction) and [`generator`] (transistor-count model
//! of the Fig. 8 generator and its amortisation across switches).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod gen_netlist;
pub mod generator;
pub mod hybrid;
pub mod mv;
pub mod optimize;
pub mod schedule;
pub mod waveform;

pub use binary::BinaryCss;
pub use gen_netlist::GeneratorNetlist;
pub use generator::GeneratorCost;
pub use hybrid::{HybridCssGen, LineId};
pub use mv::MvCss;
pub use optimize::{optimize_sweep, sweep_cost, CostMatrix, OptimizeMode, OptimizedSweep};
pub use schedule::Schedule;
pub use waveform::Waveform;

/// Errors from CSS generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CssError {
    /// Context out of range for the generator.
    ContextOutOfRange {
        /// Offending context.
        ctx: usize,
        /// Generator's context count.
        contexts: usize,
    },
    /// Context count unsupported (hybrid and MV need a multiple of 4, ≥ 4;
    /// binary needs a power of two ≥ 2).
    BadContextCount(usize),
    /// Referenced a broadcast line that does not exist.
    BadLine {
        /// Block index requested.
        block: usize,
        /// Generator's block count.
        blocks: usize,
    },
    /// A schedule and a transition-cost matrix cover different context
    /// domains (see [`optimize::optimize_sweep`]).
    DomainMismatch {
        /// The schedule's context domain.
        schedule: usize,
        /// The matrix's context domain.
        matrix: usize,
    },
}

impl std::fmt::Display for CssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CssError::ContextOutOfRange { ctx, contexts } => {
                write!(f, "context {ctx} out of range ({contexts} contexts)")
            }
            CssError::BadContextCount(c) => write!(f, "unsupported context count {c}"),
            CssError::BadLine { block, blocks } => {
                write!(f, "line block {block} out of range ({blocks} blocks)")
            }
            CssError::DomainMismatch { schedule, matrix } => {
                write!(
                    f,
                    "schedule covers {schedule} contexts but the cost matrix covers {matrix}"
                )
            }
        }
    }
}

impl std::error::Error for CssError {}
