//! The Fig. 8 generator as a *structural* circuit, simulated at switch
//! level.
//!
//! Fig. 8(b) gates an MV rail with a binary signal: when the binary gate is
//! high a transmission gate passes the rail to the output line; when low an
//! nMOS pull-down forces the line to level 0. We build exactly that — one
//! (tgate, pull-down) pair per broadcast line, sharing the `Vs`/`¬Vs` rails
//! — and drive it with the switch-level simulator to prove the structural
//! circuit realises the behavioural generator for every context.
//!
//! The conduction model: the output line connects either to the rail node
//! (gate high ⇒ tgate ON, pull-down OFF) or to the ground node (gate low ⇒
//! pull-down ON). Exclusivity of the two paths is itself an invariant the
//! tests check — a line simultaneously connected to rail and ground would
//! be a crowbar fault.

use crate::hybrid::{HybridCssGen, LineId};
use crate::CssError;
use mcfpga_device::TechParams;
use mcfpga_mvl::Level;
use mcfpga_netlist::{ControlKind, DeviceKind, NetId, Netlist, NetlistError, SwitchSim};

/// Structural model of the MV/B-CSS generator.
#[derive(Debug)]
pub struct GeneratorNetlist {
    gen: HybridCssGen,
    netlist: Netlist,
    /// Rail nodes: `(block, inverted)` → net carrying `Vs` / `¬Vs`.
    rails: Vec<(usize, bool, NetId)>,
    /// Ground node (level 0).
    ground: NetId,
    /// Output line nodes, in [`HybridCssGen::lines`] order.
    line_nets: Vec<NetId>,
}

impl GeneratorNetlist {
    /// Builds the generator circuit for `contexts` contexts.
    pub fn build(contexts: usize) -> Result<Self, CssError> {
        let gen = HybridCssGen::new(contexts)?;
        let mut nl = Netlist::new();
        let region = nl.add_region("mvb-css-generator");
        let ground = nl.add_net("gnd");
        let mut rails = Vec::new();
        for block in 0..gen.blocks() {
            for inverted in [false, true] {
                let name = if inverted {
                    format!("rail_nvs_b{block}")
                } else {
                    format!("rail_vs_b{block}")
                };
                rails.push((block, inverted, nl.add_net(&name)));
            }
        }
        let mut line_nets = Vec::new();
        for line in gen.lines() {
            let lname = line.name(gen.blocks());
            let out = nl.add_net(&lname);
            line_nets.push(out);
            let rail = rails
                .iter()
                .find(|(b, inv, _)| *b == line.block && *inv == line.inverted)
                .expect("rail exists")
                .2;
            // the gate wire: S0 (or ¬S0) AND block-select, computed by the
            // binary side and broadcast to this line's pass devices
            let gate = nl.add_control(&format!("gate[{lname}]"), ControlKind::Binary);
            let ngate = nl.add_control(&format!("ngate[{lname}]"), ControlKind::Binary);
            nl.add_device(DeviceKind::TransmissionGate, rail, out, gate, Some(region))
                .map_err(|_| CssError::BadContextCount(contexts))?;
            nl.add_device(DeviceKind::NmosPass, ground, out, ngate, Some(region))
                .map_err(|_| CssError::BadContextCount(contexts))?;
        }
        Ok(GeneratorNetlist {
            gen,
            netlist: nl,
            rails,
            ground,
            line_nets,
        })
    }

    /// The behavioural generator this circuit implements.
    #[must_use]
    pub fn generator(&self) -> &HybridCssGen {
        &self.gen
    }

    /// The structural netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Pass-device transistor count of the output stage (3 per line: tgate
    /// 2 + pull-down 1) — the `driver_transistors` term of
    /// [`crate::GeneratorCost`].
    #[must_use]
    pub fn driver_transistor_count(&self) -> usize {
        self.netlist.transistor_count()
    }

    /// Simulates one context: returns, per line, whether the output node is
    /// connected to its MV rail (`Some(level)`) or to ground (`None` ⇒
    /// level 0). Errors on a crowbar (line touching both).
    pub fn simulate_ctx(&self, ctx: usize) -> Result<Vec<Level>, CssError> {
        let mut sim = SwitchSim::new(&self.netlist, TechParams::default());
        let blocks = self.gen.blocks();
        for line in self.gen.lines() {
            let lname = line.name(blocks);
            let live = self.line_is_live(line, ctx)?;
            bind(&mut sim, &format!("gate[{lname}]"), live)
                .map_err(|_| CssError::BadContextCount(self.gen.contexts()))?;
            bind(&mut sim, &format!("ngate[{lname}]"), !live)
                .map_err(|_| CssError::BadContextCount(self.gen.contexts()))?;
        }
        sim.evaluate()
            .map_err(|_| CssError::BadContextCount(self.gen.contexts()))?;
        let vs = Level::encode_ctx(ctx % HybridCssGen::BLOCK);
        let mut out = Vec::with_capacity(self.line_nets.len());
        for (i, line) in self.gen.lines().into_iter().enumerate() {
            let net = self.line_nets[i];
            let rail = self
                .rails
                .iter()
                .find(|(b, inv, _)| *b == line.block && *inv == line.inverted)
                .expect("rail exists")
                .2;
            let to_rail = sim.connected(net, rail);
            let to_gnd = sim.connected(net, self.ground);
            if to_rail && to_gnd {
                return Err(CssError::BadLine {
                    block: line.block,
                    blocks,
                });
            }
            let level = if to_rail {
                if line.inverted {
                    vs.invert(self.gen.radix())
                } else {
                    vs
                }
            } else {
                Level::ZERO
            };
            out.push(level);
        }
        Ok(out)
    }

    fn line_is_live(&self, line: LineId, ctx: usize) -> Result<bool, CssError> {
        if ctx >= self.gen.contexts() {
            return Err(CssError::ContextOutOfRange {
                ctx,
                contexts: self.gen.contexts(),
            });
        }
        Ok(line.block == ctx / HybridCssGen::BLOCK && line.s0_polarity == (ctx & 1 == 1))
    }
}

fn bind(sim: &mut SwitchSim<'_>, name: &str, v: bool) -> Result<(), NetlistError> {
    sim.bind_bin_named(name, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_generator_matches_behavioural_4ctx() {
        let g = GeneratorNetlist::build(4).unwrap();
        for ctx in 0..4 {
            let sim_levels = g.simulate_ctx(ctx).unwrap();
            let spec: Vec<Level> = g
                .generator()
                .lines()
                .into_iter()
                .map(|l| g.generator().line_value_at(l, ctx).unwrap())
                .collect();
            assert_eq!(sim_levels, spec, "ctx {ctx}");
        }
    }

    #[test]
    fn structural_generator_matches_behavioural_8ctx() {
        let g = GeneratorNetlist::build(8).unwrap();
        for ctx in 0..8 {
            let sim_levels = g.simulate_ctx(ctx).unwrap();
            let spec: Vec<Level> = g
                .generator()
                .lines()
                .into_iter()
                .map(|l| g.generator().line_value_at(l, ctx).unwrap())
                .collect();
            assert_eq!(sim_levels, spec, "ctx {ctx}");
        }
    }

    #[test]
    fn driver_count_matches_cost_model() {
        let g = GeneratorNetlist::build(4).unwrap();
        let cost = crate::GeneratorCost::for_contexts(4).unwrap();
        assert_eq!(g.driver_transistor_count(), cost.driver_transistors);
    }

    #[test]
    fn no_crowbar_in_any_context() {
        let g = GeneratorNetlist::build(8).unwrap();
        for ctx in 0..8 {
            assert!(g.simulate_ctx(ctx).is_ok(), "crowbar at ctx {ctx}");
        }
    }

    #[test]
    fn out_of_range_ctx_rejected() {
        let g = GeneratorNetlist::build(4).unwrap();
        assert!(g.simulate_ctx(4).is_err());
    }
}
