//! Context schedules: the sequences of contexts a fabric switches through.
//!
//! A [`Schedule`] is a finite sequence of context ids over a fixed context
//! domain. Constructors cover the workload shapes the energy experiments
//! compare — round-robin time multiplexing, uniform random traffic, bursty
//! phase-local traffic — plus [`Schedule::active_sweep`], which visits only
//! the contexts a batch service currently has work for.
//!
//! ```
//! use mcfpga_css::Schedule;
//!
//! // A 4-context domain where only contexts 2 and 0 have pending work:
//! // one sweep visits each exactly once, in ascending order.
//! let sweep = Schedule::active_sweep(4, &[2, 0, 2]).unwrap();
//! assert_eq!(sweep.as_slice(), &[0, 2]);
//! assert_eq!(sweep.switch_count(), 1);
//! ```

use crate::CssError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A finite schedule of context ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    contexts: usize,
    seq: Vec<usize>,
}

impl Schedule {
    /// Round-robin `0,1,…,C−1` repeated `cycles` times — the classic
    /// time-multiplexed execution pattern (Trimberger-style).
    pub fn round_robin(contexts: usize, cycles: usize) -> Result<Self, CssError> {
        if contexts == 0 {
            return Err(CssError::BadContextCount(0));
        }
        Ok(Schedule {
            contexts,
            seq: (0..cycles).flat_map(|_| 0..contexts).collect(),
        })
    }

    /// Uniform random schedule (seeded, reproducible).
    pub fn random(contexts: usize, len: usize, seed: u64) -> Result<Self, CssError> {
        if contexts == 0 {
            return Err(CssError::BadContextCount(0));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(Schedule {
            contexts,
            seq: (0..len).map(|_| rng.random_range(0..contexts)).collect(),
        })
    }

    /// Bursty schedule: stays on a context for a geometric-ish dwell then
    /// jumps (models workloads that phase between configurations).
    pub fn bursty(
        contexts: usize,
        len: usize,
        mean_dwell: usize,
        seed: u64,
    ) -> Result<Self, CssError> {
        if contexts == 0 || mean_dwell == 0 {
            return Err(CssError::BadContextCount(contexts));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seq = Vec::with_capacity(len);
        let mut cur = rng.random_range(0..contexts);
        while seq.len() < len {
            let dwell = 1 + rng.random_range(0..mean_dwell * 2);
            for _ in 0..dwell {
                if seq.len() == len {
                    break;
                }
                seq.push(cur);
            }
            cur = rng.random_range(0..contexts);
        }
        Ok(Schedule { contexts, seq })
    }

    /// One sweep over the *active* subset of a context domain: each context
    /// in `active` is visited exactly once, in ascending order. This is the
    /// schedule a batch-execution service replays when only some contexts
    /// have pending work — idle contexts are never switched in, so they
    /// cost no broadcast toggles.
    ///
    /// **Duplicate context ids collapse** — they are deduplicated, not
    /// rejected. A sweep visits each context at most once by definition; a
    /// duplicate in `active` (e.g. several pending batches reporting the
    /// same context) carries no extra information about *which* contexts
    /// need switching in, so erroring would punish harmless callers. The
    /// sweep optimizer ([`crate::optimize::optimize_sweep`]) makes the same
    /// decision. Callers that genuinely need a context executed twice use
    /// [`Schedule::explicit`], which preserves duplicates.
    ///
    /// An empty `active` set yields an empty schedule; a context outside
    /// the domain is rejected.
    pub fn active_sweep(contexts: usize, active: &[usize]) -> Result<Self, CssError> {
        if contexts == 0 {
            return Err(CssError::BadContextCount(0));
        }
        if let Some(&bad) = active.iter().find(|&&c| c >= contexts) {
            return Err(CssError::ContextOutOfRange { ctx: bad, contexts });
        }
        let mut seq: Vec<usize> = active.to_vec();
        seq.sort_unstable();
        seq.dedup();
        Ok(Schedule { contexts, seq })
    }

    /// Explicit schedule from a sequence.
    pub fn explicit(contexts: usize, seq: Vec<usize>) -> Result<Self, CssError> {
        if contexts == 0 {
            return Err(CssError::BadContextCount(0));
        }
        if let Some(&bad) = seq.iter().find(|&&c| c >= contexts) {
            return Err(CssError::ContextOutOfRange { ctx: bad, contexts });
        }
        Ok(Schedule { contexts, seq })
    }

    /// Number of contexts in the domain.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Schedule length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Is the schedule empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The sequence.
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.seq
    }

    /// Iterator over the scheduled contexts.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.seq.iter().copied()
    }

    /// Number of steps where the context actually changes.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.seq.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let s = Schedule::round_robin(4, 2).unwrap();
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(s.switch_count(), 7);
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let a = Schedule::random(8, 100, 1).unwrap();
        let b = Schedule::random(8, 100, 1).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|c| c < 8));
        assert_ne!(a, Schedule::random(8, 100, 2).unwrap());
    }

    #[test]
    fn bursty_dwells() {
        let s = Schedule::bursty(4, 200, 10, 3).unwrap();
        assert_eq!(s.len(), 200);
        // bursty schedules switch much less often than random ones
        let r = Schedule::random(4, 200, 3).unwrap();
        assert!(s.switch_count() < r.switch_count());
    }

    #[test]
    fn explicit_validation() {
        assert!(Schedule::explicit(4, vec![0, 1, 2, 3]).is_ok());
        assert!(matches!(
            Schedule::explicit(4, vec![0, 4]),
            Err(CssError::ContextOutOfRange { ctx: 4, .. })
        ));
    }

    #[test]
    fn active_sweep_sorts_and_dedups() {
        let s = Schedule::active_sweep(8, &[5, 1, 5, 3, 1]).unwrap();
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert!(Schedule::active_sweep(8, &[]).unwrap().is_empty());
        assert!(matches!(
            Schedule::active_sweep(4, &[0, 4]),
            Err(CssError::ContextOutOfRange { ctx: 4, .. })
        ));
        assert!(matches!(
            Schedule::active_sweep(0, &[]),
            Err(CssError::BadContextCount(0))
        ));
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::explicit(4, vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.switch_count(), 0);
    }
}
