//! Conventional binary context-switching signal.
//!
//! The SRAM-based MC-switch (Fig. 2) receives the context id as a plain
//! binary word; each switch's `N:1` MUX decodes it locally. The word and its
//! per-bit complements are broadcast chip-wide.

use crate::CssError;

/// Binary CSS source for `contexts` contexts (`contexts` a power of two ≥ 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryCss {
    contexts: usize,
    current: usize,
}

impl BinaryCss {
    /// Creates a generator parked at context 0.
    pub fn new(contexts: usize) -> Result<Self, CssError> {
        if contexts < 2 || !contexts.is_power_of_two() || contexts > 64 {
            return Err(CssError::BadContextCount(contexts));
        }
        Ok(BinaryCss {
            contexts,
            current: 0,
        })
    }

    /// Number of contexts.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Number of select bits (`log2 contexts`).
    #[must_use]
    pub fn bits(&self) -> usize {
        self.contexts.trailing_zeros() as usize
    }

    /// Currently broadcast context.
    #[must_use]
    pub fn current(&self) -> usize {
        self.current
    }

    /// Switches to `ctx`.
    pub fn switch_to(&mut self, ctx: usize) -> Result<(), CssError> {
        if ctx >= self.contexts {
            return Err(CssError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            });
        }
        self.current = ctx;
        Ok(())
    }

    /// Advances round-robin and returns the new context.
    pub fn advance(&mut self) -> usize {
        self.current = (self.current + 1) % self.contexts;
        self.current
    }

    /// Bit `k` of the current context word (`S_k`).
    #[must_use]
    pub fn bit(&self, k: usize) -> bool {
        (self.current >> k) & 1 == 1
    }

    /// Complement of bit `k` (`¬S_k`).
    #[must_use]
    pub fn bit_n(&self, k: usize) -> bool {
        !self.bit(k)
    }

    /// The whole word as LSB-first bits.
    #[must_use]
    pub fn word(&self) -> Vec<bool> {
        (0..self.bits()).map(|k| self.bit(k)).collect()
    }

    /// Number of bit positions whose value changes when switching from
    /// `self.current` to `ctx` (broadcast-wire toggle count — dynamic-energy
    /// proxy).
    #[must_use]
    pub fn hamming_to(&self, ctx: usize) -> usize {
        (self.current ^ ctx).count_ones() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rules() {
        assert!(BinaryCss::new(1).is_err());
        assert!(BinaryCss::new(3).is_err());
        assert!(BinaryCss::new(128).is_err());
        assert!(BinaryCss::new(4).is_ok());
        assert_eq!(BinaryCss::new(8).unwrap().bits(), 3);
    }

    #[test]
    fn switching_and_bits() {
        let mut css = BinaryCss::new(4).unwrap();
        css.switch_to(2).unwrap();
        assert_eq!(css.current(), 2);
        assert!(!css.bit(0));
        assert!(css.bit(1));
        assert!(css.bit_n(0));
        assert_eq!(css.word(), vec![false, true]);
        assert!(css.switch_to(4).is_err());
    }

    #[test]
    fn round_robin() {
        let mut css = BinaryCss::new(4).unwrap();
        let seq: Vec<usize> = (0..6).map(|_| css.advance()).collect();
        assert_eq!(seq, vec![1, 2, 3, 0, 1, 2]);
    }

    #[test]
    fn hamming_counts_toggles() {
        let mut css = BinaryCss::new(8).unwrap();
        css.switch_to(0b000).unwrap();
        assert_eq!(css.hamming_to(0b111), 3);
        assert_eq!(css.hamming_to(0b100), 1);
        assert_eq!(css.hamming_to(0b000), 0);
    }
}
