//! Sampled waveforms of broadcast lines — the Fig. 7 reproduction.
//!
//! A [`Waveform`] is a named sequence of rail levels, one sample per schedule
//! step. Rendering produces either CSV (for plotting) or an ASCII level plot
//! shaped like the paper's figure: one horizontal band per line, context ids
//! along the top.

use crate::hybrid::HybridCssGen;
use crate::schedule::Schedule;
use crate::CssError;
use mcfpga_mvl::Level;

/// A sampled trace of one broadcast line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waveform {
    /// Line name (e.g. `"S0·Vs"`).
    pub name: String,
    /// One level per schedule step.
    pub samples: Vec<Level>,
}

impl Waveform {
    /// Highest level in the trace.
    #[must_use]
    pub fn peak(&self) -> Level {
        self.samples.iter().copied().max().unwrap_or(Level::ZERO)
    }

    /// Number of steps at which the level changes.
    #[must_use]
    pub fn toggle_count(&self) -> usize {
        self.samples.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// Samples every broadcast line of `gen` over `schedule`.
pub fn trace_hybrid(gen: &HybridCssGen, schedule: &Schedule) -> Result<Vec<Waveform>, CssError> {
    let blocks = gen.blocks();
    let mut out: Vec<Waveform> = gen
        .lines()
        .into_iter()
        .map(|l| Waveform {
            name: l.name(blocks),
            samples: Vec::with_capacity(schedule.len()),
        })
        .collect();
    for ctx in schedule.iter() {
        for (w, line) in out.iter_mut().zip(gen.lines()) {
            w.samples.push(gen.line_value_at(line, ctx)?);
        }
    }
    Ok(out)
}

/// Renders waveforms as CSV: `step,ctx,<line>,<line>,…`.
#[must_use]
pub fn to_csv(schedule: &Schedule, waves: &[Waveform]) -> String {
    let mut s = String::from("step,ctx");
    for w in waves {
        s.push(',');
        s.push_str(&w.name);
    }
    s.push('\n');
    for (i, ctx) in schedule.iter().enumerate() {
        s.push_str(&format!("{i},{ctx}"));
        for w in waves {
            s.push_str(&format!(",{}", w.samples[i]));
        }
        s.push('\n');
    }
    s
}

/// Renders one waveform as an ASCII level plot (rows = levels top-down,
/// columns = steps), mirroring the Fig. 7 panels.
#[must_use]
pub fn render_ascii(w: &Waveform, max_level: u8) -> String {
    let mut out = format!("{}\n", w.name);
    for lvl in (0..=max_level).rev() {
        let mut row = format!("{lvl} |");
        for s in &w.samples {
            row.push(if s.value() == lvl { '#' } else { ' ' });
            row.push(' ');
        }
        out.push_str(row.trim_end());
        out.push('\n');
    }
    out.push_str("   ");
    for i in 0..w.samples.len() {
        out.push_str(&format!("{} ", i % 10));
    }
    out.push('\n');
    out
}

/// Renders the full Fig. 7 panel set for a generator and schedule.
pub fn render_fig7(gen: &HybridCssGen, schedule: &Schedule) -> Result<String, CssError> {
    let waves = trace_hybrid(gen, schedule)?;
    let top = gen.radix().top().value();
    let mut out = String::new();
    out.push_str(&format!(
        "contexts: {:?}\n\n",
        schedule.iter().collect::<Vec<_>>()
    ));
    for w in &waves {
        out.push_str(&render_ascii(w, top));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7_setup() -> (HybridCssGen, Schedule) {
        (
            HybridCssGen::new(4).unwrap(),
            Schedule::round_robin(4, 1).unwrap(),
        )
    }

    #[test]
    fn fig7_trace_values() {
        let (gen, sched) = fig7_setup();
        let waves = trace_hybrid(&gen, &sched).unwrap();
        assert_eq!(waves.len(), 4);
        let lv = |w: &Waveform| w.samples.iter().map(|l| l.value()).collect::<Vec<_>>();
        assert_eq!(waves[0].name, "S0·Vs");
        assert_eq!(lv(&waves[0]), vec![0, 2, 0, 4]);
        assert_eq!(waves[1].name, "S0·¬Vs");
        assert_eq!(lv(&waves[1]), vec![0, 3, 0, 1]);
        assert_eq!(waves[2].name, "¬S0·Vs");
        assert_eq!(lv(&waves[2]), vec![1, 0, 3, 0]);
        assert_eq!(waves[3].name, "¬S0·¬Vs");
        assert_eq!(lv(&waves[3]), vec![4, 0, 2, 0]);
    }

    #[test]
    fn csv_shape() {
        let (gen, sched) = fig7_setup();
        let waves = trace_hybrid(&gen, &sched).unwrap();
        let csv = to_csv(&sched, &waves);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("step,ctx,S0·Vs"));
        assert_eq!(lines[1], "0,0,0,0,1,4");
        assert_eq!(lines[2], "1,1,2,3,0,0");
    }

    #[test]
    fn ascii_plot_has_level_rows() {
        let w = Waveform {
            name: "test".into(),
            samples: vec![Level::new(0), Level::new(2), Level::new(4)],
        };
        let s = render_ascii(&w, 4);
        assert!(s.contains("4 |"));
        assert!(s.contains("0 |#"));
        assert_eq!(w.peak(), Level::new(4));
        assert_eq!(w.toggle_count(), 2);
    }

    #[test]
    fn fig7_full_render() {
        let (gen, sched) = fig7_setup();
        let s = render_fig7(&gen, &sched).unwrap();
        assert!(s.contains("S0·Vs"));
        assert!(s.contains("¬S0·¬Vs"));
    }
}
