//! Properties of the sweep optimizer (`css::optimize`):
//!
//! 1. **Output equivalence** — on random routed fabrics, replaying the
//!    optimized sweep produces bit-for-bit identical per-context outputs
//!    to the naive order, across all 64 lanes.
//! 2. **Energy monotonicity** — the optimized order's modeled toggles
//!    never exceed the input order's, for both the hybrid and binary cost
//!    models, from any starting context.
//! 3. **Sweep structure** — the optimizer returns a permutation of the
//!    input's distinct contexts, each visited exactly once (duplicates
//!    collapse — the specified dedup decision).

use mcfpga_core::ArchKind;
use mcfpga_css::optimize::{optimize_sweep, CostMatrix};
use mcfpga_css::Schedule;
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::CompiledFabric;
use mcfpga_fabric::context::{run_schedule, ContextSequencer};
use mcfpga_fabric::netlist_ir::{LogicNetlist, NodeId};
use mcfpga_fabric::route::implement_netlist;
use mcfpga_fabric::{Fabric, FabricParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Random LUT DAG (same shape as the engine-equivalence proptests):
/// `inputs` primary inputs `i0..`, `luts` LUTs with 1–3 fanins, 2 outputs.
fn random_dag(seed: u64, inputs: usize, luts: usize) -> LogicNetlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = LogicNetlist::new();
    let mut pool: Vec<NodeId> = (0..inputs)
        .map(|i| nl.add_input(&format!("i{i}")))
        .collect();
    for j in 0..luts {
        let f = 1 + rng.random_range(0..3usize.min(pool.len()));
        let mut fanin = Vec::with_capacity(f);
        for _ in 0..f {
            fanin.push(pool[rng.random_range(0..pool.len())]);
        }
        fanin.dedup();
        let rows = 1u64 << fanin.len();
        let table = rng.random_range(0..(1u64 << rows.min(63)));
        let id = nl.add_lut(&format!("l{j}"), &fanin, table).unwrap();
        pool.push(id);
    }
    nl.add_output("o1", pool[pool.len() - 1]).unwrap();
    nl.add_output("o2", pool[pool.len() - 2]).unwrap();
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying the optimized order of a random active sweep through a
    /// random multi-context fabric yields exactly the outputs of the naive
    /// order, context by context, across all 64 lanes — and never costs
    /// more broadcast toggles or energy.
    #[test]
    fn optimized_sweep_is_output_equivalent_and_never_costlier(
        seed in 0u64..5000,
        lane_seed in any::<u64>(),
        active_mask in 1u8..16,
    ) {
        const INPUTS: usize = 4;
        let mut f = Fabric::new(FabricParams {
            width: 5,
            height: 5,
            channel_width: 4,
            ..FabricParams::default()
        }).unwrap();
        let mut mapped = Vec::new();
        for ctx in 0..4usize {
            let nl = random_dag(seed.wrapping_add(1 + ctx as u64), INPUTS, 5 + ctx);
            if implement_netlist(&mut f, &nl, ctx, seed ^ ctx as u64).is_ok() {
                mapped.push(ctx);
            } else {
                f.clear_context(ctx).unwrap();
            }
        }
        // the active subset: mapped contexts selected by the mask bits
        let active: Vec<usize> = mapped
            .iter()
            .copied()
            .filter(|&c| active_mask & (1 << c) != 0)
            .collect();
        prop_assume!(!active.is_empty());

        let compiled = CompiledFabric::compile(&f).unwrap();
        let naive = Schedule::active_sweep(4, &active).unwrap();
        // run_schedule resets the sequencer to context 0 first, so the
        // optimizer is anchored there too
        let matrix = CostMatrix::hybrid(4).unwrap();
        let opt = optimize_sweep(&naive, &matrix, Some(0)).unwrap();

        let mut rng = StdRng::seed_from_u64(lane_seed);
        let lanes: Vec<u64> = (0..INPUTS).map(|_| rng.random_range(0..u64::MAX)).collect();
        let names: Vec<String> = (0..INPUTS).map(|i| format!("i{i}")).collect();
        let inputs: Vec<(&str, u64)> = names
            .iter()
            .zip(&lanes)
            .map(|(n, v)| (n.as_str(), *v))
            .collect();

        let p = TechParams::default();
        let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
        let naive_run = run_schedule(&compiled, &mut seq, &naive, &inputs, &p).unwrap();
        let opt_run = run_schedule(&compiled, &mut seq, &opt.schedule, &inputs, &p).unwrap();

        // each context appears exactly once per sweep: compare by context
        let by_ctx = |run: &mcfpga_fabric::context::ScheduleRun| -> BTreeMap<usize, Vec<(String, u64)>> {
            run.steps.iter().cloned().collect()
        };
        let want = by_ctx(&naive_run);
        let got = by_ctx(&opt_run);
        prop_assert_eq!(want.len(), got.len(), "same contexts visited");
        for (ctx, outs) in &want {
            // bit-for-bit: every named output word equal on all 64 lanes
            prop_assert_eq!(outs, &got[ctx], "ctx {} outputs diverge", ctx);
        }

        // modeled energy never worse, and the run agrees with the model
        prop_assert!(opt_run.stats.wire_toggles <= naive_run.stats.wire_toggles);
        prop_assert!(opt_run.stats.dynamic_energy_j <= naive_run.stats.dynamic_energy_j);
        prop_assert_eq!(opt_run.stats.wire_toggles, opt.optimized_cost);
        prop_assert_eq!(naive_run.stats.wire_toggles, opt.naive_cost);
    }

    /// Hybrid cost model: for any context count, active subset and start,
    /// the optimizer's order is a one-visit permutation of the distinct
    /// input contexts, its reported cost is the true path cost, and it
    /// never exceeds the input order's cost.
    #[test]
    fn hybrid_energy_never_worse(
        blocks in 1usize..6,
        raw in prop::collection::vec(any::<usize>(), 1..20),
        start_raw in any::<usize>(),
    ) {
        let contexts = blocks * 4;
        let active: Vec<usize> = raw.iter().map(|r| r % contexts).collect();
        let start = start_raw % contexts;
        let matrix = CostMatrix::hybrid(contexts).unwrap();
        let input = Schedule::active_sweep(contexts, &active).unwrap();
        let opt = optimize_sweep(&input, &matrix, Some(start)).unwrap();

        let input_cost = matrix.path_cost(Some(start), input.as_slice()).unwrap();
        prop_assert_eq!(opt.naive_cost, input_cost);
        prop_assert!(opt.optimized_cost <= opt.naive_cost);
        prop_assert_eq!(
            matrix.path_cost(Some(start), opt.schedule.as_slice()).unwrap(),
            opt.optimized_cost
        );

        let mut want: Vec<usize> = active.clone();
        want.sort_unstable();
        want.dedup();
        let mut got: Vec<usize> = opt.schedule.as_slice().to_vec();
        got.sort_unstable();
        prop_assert_eq!(got, want, "one visit per distinct context");
    }

    /// The same monotonicity holds under the binary (Hamming) cost model —
    /// the optimizer is CSS-family agnostic.
    #[test]
    fn binary_energy_never_worse(
        bits in 2u32..6,
        raw in prop::collection::vec(any::<usize>(), 1..20),
        start_raw in any::<usize>(),
    ) {
        let contexts = 1usize << bits;
        let active: Vec<usize> = raw.iter().map(|r| r % contexts).collect();
        let start = start_raw % contexts;
        let matrix = CostMatrix::binary(contexts).unwrap();
        let input = Schedule::active_sweep(contexts, &active).unwrap();
        let opt = optimize_sweep(&input, &matrix, Some(start)).unwrap();
        prop_assert!(opt.optimized_cost <= opt.naive_cost);
        prop_assert_eq!(
            matrix.path_cost(Some(start), opt.schedule.as_slice()).unwrap(),
            opt.optimized_cost
        );
    }

    /// Duplicates in the input collapse: optimizing a duplicated sweep is
    /// identical to optimizing its deduplicated form.
    #[test]
    fn duplicates_collapse(
        raw in prop::collection::vec(0usize..8, 1..24),
        start in 0usize..8,
    ) {
        let matrix = CostMatrix::hybrid(8).unwrap();
        let dup = Schedule::explicit(8, raw.clone()).unwrap();
        let mut dedup_first: Vec<usize> = Vec::new();
        for c in &raw {
            if !dedup_first.contains(c) {
                dedup_first.push(*c);
            }
        }
        let dedup = Schedule::explicit(8, dedup_first).unwrap();
        let a = optimize_sweep(&dup, &matrix, Some(start)).unwrap();
        let b = optimize_sweep(&dedup, &matrix, Some(start)).unwrap();
        prop_assert_eq!(a, b);
    }
}
