//! Property tests for the context-switching signal generators.

use mcfpga_css::gen_netlist::GeneratorNetlist;
use mcfpga_css::{BinaryCss, HybridCssGen, MvCss, Schedule};
use mcfpga_mvl::Level;
use proptest::prelude::*;

proptest! {
    /// For every context, exactly two broadcast lines are live (the
    /// matching block+polarity pair) and they carry `Vs` and `¬Vs`.
    #[test]
    fn exactly_two_live_lines(contexts in prop::sample::select(vec![4usize, 8, 16, 32, 64]), seed in any::<u64>()) {
        let gen = HybridCssGen::new(contexts).unwrap();
        let ctx = (seed as usize) % contexts;
        let live: Vec<Level> = gen
            .lines()
            .into_iter()
            .map(|l| gen.line_value_at(l, ctx).unwrap())
            .filter(|v| !v.is_off())
            .collect();
        prop_assert_eq!(live.len(), 2);
        prop_assert_eq!(live[0].value() + live[1].value(), 5);
    }

    /// The structural Fig. 8 generator always equals the behavioural one.
    #[test]
    fn structural_equals_behavioural(contexts in prop::sample::select(vec![4usize, 8, 12]), seed in any::<u64>()) {
        // 12 is rejected by both (must agree on the error too)
        match (GeneratorNetlist::build(contexts), HybridCssGen::new(contexts)) {
            (Ok(g), Ok(gen)) => {
                let ctx = (seed as usize) % contexts;
                let sim = g.simulate_ctx(ctx).unwrap();
                let spec: Vec<Level> = gen
                    .lines()
                    .into_iter()
                    .map(|l| gen.line_value_at(l, ctx).unwrap())
                    .collect();
                prop_assert_eq!(sim, spec);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "structural/behavioural disagree on validity"),
        }
    }

    /// Hybrid toggle counting is a pseudometric: zero on identity,
    /// symmetric, triangle inequality.
    #[test]
    fn toggles_form_pseudometric(a in 0usize..8, b in 0usize..8, c in 0usize..8) {
        let gen = HybridCssGen::new(8).unwrap();
        let d = |x, y| gen.toggles_between(x, y).unwrap();
        prop_assert_eq!(d(a, a), 0);
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert!(d(a, c) <= d(a, b) + d(b, c));
    }

    /// Binary CSS hamming distance is consistent with word bits.
    #[test]
    fn binary_css_bits_roundtrip(ctx in 0usize..64) {
        let mut css = BinaryCss::new(64).unwrap();
        css.switch_to(ctx).unwrap();
        let word = css.word();
        let rebuilt: usize = word
            .iter()
            .enumerate()
            .map(|(k, b)| usize::from(*b) << k)
            .sum();
        prop_assert_eq!(rebuilt, ctx);
    }

    /// MV CSS block decomposition reassembles the context id.
    #[test]
    fn mv_css_block_decomposition(contexts in prop::sample::select(vec![4usize, 8, 16, 32, 64]), seed in any::<u64>()) {
        let mut css = MvCss::new(contexts).unwrap();
        let ctx = (seed as usize) % contexts;
        css.switch_to(ctx).unwrap();
        let rebuilt = css.active_block() * 4 + css.rail_level().value() as usize;
        prop_assert_eq!(rebuilt, ctx);
    }

    /// Schedules: switch_count is invariant under repetition-collapse
    /// bounds: it is at most len−1 and zero for constant schedules.
    #[test]
    fn schedule_switch_count_bounds(seq in prop::collection::vec(0usize..4, 1..64)) {
        let s = Schedule::explicit(4, seq.clone()).unwrap();
        prop_assert!(s.switch_count() < seq.len());
        let constant = Schedule::explicit(4, vec![seq[0]; seq.len()]).unwrap();
        prop_assert_eq!(constant.switch_count(), 0);
    }
}
