//! The physical programming flow: realising a switch configuration through
//! the noisy charge-injection [`Programmer`] instead of ideal threshold
//! placement.
//!
//! This closes the loop between the architecture and the device model:
//! program/verify converges to within `program_tolerance_v`, which is well
//! inside the half-step rail margin, so a noisily-programmed switch must
//! behave identically to the ideal one. The flow also accounts endurance
//! (lifetime pulses) across reconfiguration cycles — the cost of using
//! floating-gate storage as multi-context configuration memory.

use crate::hybrid_switch::HybridMcSwitch;
use crate::traits::McSwitch;
use crate::CoreError;
use mcfpga_device::{Fgmos, FgmosMode, Programmer};
use mcfpga_netlist::{ControlKind, DeviceKind, Netlist};

/// Outcome of physically programming one hybrid switch configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramStats {
    /// Programming pulses spent in this pass.
    pub pulses: u32,
    /// Largest post-verify threshold error (volts).
    pub worst_error_v: f64,
}

/// A hybrid MC-switch whose FGMOSs are real device instances carrying
/// accumulated charge-injection history.
#[derive(Debug)]
pub struct ProgrammedHybrid {
    model: HybridMcSwitch,
    devices: Vec<Fgmos>,
}

impl ProgrammedHybrid {
    /// Creates the switch with fresh (unprogrammed) devices.
    pub fn new(contexts: usize) -> Result<Self, CoreError> {
        let model = HybridMcSwitch::new(contexts)?;
        let devices = (0..contexts / 2)
            .map(|_| Fgmos::new(FgmosMode::UpLiteral))
            .collect();
        Ok(ProgrammedHybrid { model, devices })
    }

    /// Programs a configuration through the charge-injection flow.
    pub fn configure(
        &mut self,
        on_set: &mcfpga_mvl::CtxSet,
        prog: &mut Programmer,
    ) -> Result<ProgramStats, CoreError> {
        self.model.configure(on_set)?;
        let radix = self.model.generator().radix();
        let mut pulses = 0u32;
        let mut worst = 0.0f64;
        for ((_, threshold), dev) in self.model.unit_plan().into_iter().zip(&mut self.devices) {
            let out = match threshold {
                Some(t) => prog.program_literal(dev, t, radix)?,
                None => prog.park(dev, radix)?,
            };
            pulses += out.pulses;
            worst = worst.max(out.error_v);
        }
        Ok(ProgramStats {
            pulses,
            worst_error_v: worst,
        })
    }

    /// The behavioural model (ideal thresholds) this instance was programmed
    /// from.
    #[must_use]
    pub fn model(&self) -> &HybridMcSwitch {
        &self.model
    }

    /// Lifetime pulses across all devices (endurance accounting).
    #[must_use]
    pub fn total_pulses(&self) -> u64 {
        self.devices.iter().map(Fgmos::total_pulses).sum()
    }

    /// Does the *physical* switch conduct in `ctx`? Evaluates the real
    /// devices against the broadcast line values.
    pub fn is_on_physical(&self, ctx: usize) -> Result<bool, CoreError> {
        let gen = self.model.generator();
        let params = mcfpga_device::TechParams::default();
        for ((line, _threshold), dev) in self.model.unit_plan().into_iter().zip(&self.devices) {
            let g = gen.line_value_at(line, ctx)?;
            if dev.conducts(g, &params)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Builds a netlist whose FGMOS instances are the physically-programmed
    /// devices (thresholds carry injection noise).
    pub fn build_netlist(&self) -> Result<Netlist, CoreError> {
        let gen = self.model.generator();
        let blocks = gen.blocks();
        let mut nl = Netlist::new();
        let region = nl.add_region("programmed-hybrid-switch");
        let input = nl.add_net("in");
        let out = nl.add_net("out");
        for ((line, _), dev) in self.model.unit_plan().into_iter().zip(&self.devices) {
            let name = line.name(blocks);
            let ctrl = nl
                .find_control(&name)
                .unwrap_or_else(|| nl.add_control(&name, ControlKind::Mv));
            nl.add_device(
                DeviceKind::Fgmos(dev.clone()),
                input,
                out,
                ctrl,
                Some(region),
            )?;
        }
        Ok(nl)
    }

    /// Ages every device by `hours` of retention drift.
    pub fn age(&mut self, prog: &mut Programmer, hours: f64) {
        for dev in &mut self.devices {
            prog.age(dev, hours);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_device::TechParams;
    use mcfpga_mvl::CtxSet;

    #[test]
    fn noisy_programming_preserves_behaviour_all_4ctx_configs() {
        let mut prog = Programmer::new(0xA5, TechParams::default());
        let mut sw = ProgrammedHybrid::new(4).unwrap();
        for s in CtxSet::enumerate_all(4).unwrap() {
            let stats = sw.configure(&s, &mut prog).unwrap();
            assert!(stats.worst_error_v <= prog.params().program_tolerance_v);
            for ctx in 0..4 {
                assert_eq!(sw.is_on_physical(ctx).unwrap(), s.get(ctx), "{s} ctx {ctx}");
            }
        }
    }

    #[test]
    fn endurance_accumulates_across_reconfigurations() {
        let mut prog = Programmer::new(7, TechParams::default());
        let mut sw = ProgrammedHybrid::new(4).unwrap();
        let a = CtxSet::from_ctxs(4, [0, 1]).unwrap();
        let b = CtxSet::from_ctxs(4, [2, 3]).unwrap();
        let mut last = 0;
        for i in 0..10 {
            sw.configure(if i % 2 == 0 { &a } else { &b }, &mut prog)
                .unwrap();
            let now = sw.total_pulses();
            assert!(now > last, "pulses must accumulate");
            last = now;
        }
    }

    #[test]
    fn aged_switch_still_correct_within_retention_spec() {
        let mut prog = Programmer::new(21, TechParams::default());
        let mut sw = ProgrammedHybrid::new(4).unwrap();
        let s = CtxSet::from_ctxs(4, [1, 2]).unwrap();
        sw.configure(&s, &mut prog).unwrap();
        sw.age(&mut prog, 5.0 * 365.0 * 24.0); // five years
        for ctx in 0..4 {
            assert_eq!(sw.is_on_physical(ctx).unwrap(), s.get(ctx));
        }
    }

    #[test]
    fn programmed_netlist_behaves_like_model() {
        use mcfpga_netlist::SwitchSim;
        let mut prog = Programmer::new(3, TechParams::default());
        let mut sw = ProgrammedHybrid::new(8).unwrap();
        let s = CtxSet::from_ctxs(8, [0, 3, 5, 6]).unwrap();
        sw.configure(&s, &mut prog).unwrap();
        let nl = sw.build_netlist().unwrap();
        let gen = sw.model().generator();
        let mut sim = SwitchSim::new(&nl, TechParams::default());
        let a = nl.find_net("in").unwrap();
        let b = nl.find_net("out").unwrap();
        for ctx in 0..8 {
            for line in gen.lines() {
                let name = line.name(gen.blocks());
                if nl.find_control(&name).is_some() {
                    sim.bind_mv_named(&name, gen.line_value_at(line, ctx).unwrap())
                        .unwrap();
                }
            }
            sim.evaluate().unwrap();
            assert_eq!(sim.connected(a, b), s.get(ctx), "ctx {ctx}");
        }
    }
}
