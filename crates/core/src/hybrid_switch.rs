//! The proposed hybrid MV/B MC-switch (paper Figs. 9–10).
//!
//! Per 4-context block, **two FGMOSs** in parallel between the routing wires:
//!
//! * `Tr1` is armed when `S0 = 1` — it owns contexts `{1, 3}` of the block;
//! * `Tr2` is armed when `S0 = 0` — it owns contexts `{0, 2}`.
//!
//! Each FGMOS's gate is wired (by the per-switch/column select network) to
//! one of its polarity's two broadcast lines — `pol·Vs` or `pol·¬Vs` — and
//! its floating gate is programmed with an **up-threshold** on the
//! five-valued rail. Because the line is gated to level 0 whenever the
//! polarity (or the 4-context block, for C > 4) does not match, a single
//! threshold simultaneously checks the binary *and* the MV condition:
//! "Threshold operation for 'AND-ing' the MV-CSS and the binary one
//! implements the same function as 'AND-ing' two window literals" (§3).
//!
//! The four per-unit configurations:
//!
//! | ON subset of `{lo, hi}` | line      | threshold            |
//! |--------------------------|-----------|----------------------|
//! | `{}`                     | `pol·Vs`  | parked (never)       |
//! | `{lo}`                   | `pol·¬Vs` | `¬Vs(lo) = 5−Vs(lo)` |
//! | `{hi}`                   | `pol·Vs`  | `Vs(hi)`             |
//! | `{lo, hi}`               | `pol·Vs`  | `Vs(lo)`             |
//!
//! Scaling (Fig. 10): more blocks are simply **more parallel FGMOS pairs**
//! — block gating happens in the shared generator, so no per-switch MUX is
//! ever added: `T(C) = C/2`. The 2-transistor line-select network per FGMOS
//! is accounted separately ([`HybridMcSwitch::select_transistors`]) because
//! a switch block shares it along each column (Fig. 11, Table 2).

use crate::traits::{ArchKind, McSwitch};
use crate::CoreError;
use mcfpga_css::{HybridCssGen, LineId};
use mcfpga_device::{Fgmos, FgmosMode, TechParams};
use mcfpga_mvl::{CtxSet, Level};
use mcfpga_netlist::{ControlKind, DeviceKind, Netlist};

/// Configuration of one FGMOS unit (one polarity of one block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitProgram {
    /// Never conducts (parked threshold).
    Off,
    /// Conducts only in the unit's low context: watch `pol·¬Vs`, threshold
    /// `5 − Vs(lo)`.
    LoOnly,
    /// Conducts only in the unit's high context: watch `pol·Vs`, threshold
    /// `Vs(hi)`.
    HiOnly,
    /// Conducts in both: watch `pol·Vs`, threshold `Vs(lo)`.
    Both,
}

/// One FGMOS unit: polarity `s0` of block `block`.
#[derive(Debug, Clone)]
struct Unit {
    block: usize,
    s0: bool,
    program: UnitProgram,
}

impl Unit {
    /// Contexts this unit owns: `{4·block + s0, 4·block + s0 + 2}`.
    fn lo_ctx(&self) -> usize {
        4 * self.block + usize::from(self.s0)
    }
    fn hi_ctx(&self) -> usize {
        self.lo_ctx() + 2
    }

    /// Which broadcast line the unit's gate watches.
    fn line(&self) -> LineId {
        LineId {
            block: self.block,
            s0_polarity: self.s0,
            inverted: matches!(self.program, UnitProgram::LoOnly),
        }
    }

    /// The up-threshold programmed into the floating gate, if any.
    fn threshold(&self) -> Option<Level> {
        let lo_vs = Level::encode_ctx(self.lo_ctx() % 4);
        let hi_vs = Level::encode_ctx(self.hi_ctx() % 4);
        match self.program {
            UnitProgram::Off => None,
            UnitProgram::LoOnly => Some(lo_vs.invert(mcfpga_mvl::Radix::FIVE)),
            UnitProgram::HiOnly => Some(hi_vs),
            UnitProgram::Both => Some(lo_vs),
        }
    }
}

/// Proposed hybrid MV/B multi-context switch.
#[derive(Debug, Clone)]
pub struct HybridMcSwitch {
    contexts: usize,
    gen: HybridCssGen,
    units: Vec<Unit>,
    config: Option<CtxSet>,
    params: TechParams,
}

impl HybridMcSwitch {
    /// Creates a switch for `contexts` contexts (multiple of 4, ≤ 64).
    pub fn new(contexts: usize) -> Result<Self, CoreError> {
        let gen = HybridCssGen::new(contexts)?;
        let mut units = Vec::with_capacity(contexts / 2);
        for block in 0..gen.blocks() {
            for s0 in [true, false] {
                units.push(Unit {
                    block,
                    s0,
                    program: UnitProgram::Off,
                });
            }
        }
        Ok(HybridMcSwitch {
            contexts,
            gen,
            units,
            config: None,
            params: TechParams::default(),
        })
    }

    /// Closed-form transistor count `C/2` (FGMOS only).
    #[must_use]
    pub fn transistor_count_for(contexts: usize) -> usize {
        contexts / 2
    }

    /// Per-switch line-select transistors (2 per FGMOS). In a crossbar
    /// switch block these are **shared along a column** (Fig. 11), which is
    /// why Table 1 reports 2 transistors and Table 2 reports `K²·C/2 + K·C`.
    #[must_use]
    pub fn select_transistors_for(contexts: usize) -> usize {
        contexts // 2 per FGMOS × C/2 FGMOS
    }

    /// Select-network transistors of this instance.
    #[must_use]
    pub fn select_transistors(&self) -> usize {
        Self::select_transistors_for(self.contexts)
    }

    /// The program of each FGMOS unit (block-major, `S0=1` first).
    #[must_use]
    pub fn unit_programs(&self) -> Vec<UnitProgram> {
        self.units.iter().map(|u| u.program).collect()
    }

    /// How many FGMOSs conduct in context `ctx` — the exclusivity invariant
    /// says this is **0 or 1**, never more.
    pub fn on_fgmos_count(&self, ctx: usize) -> Result<usize, CoreError> {
        self.check_ctx(ctx)?;
        if self.config.is_none() {
            return Err(CoreError::Unconfigured);
        }
        let mut on = 0;
        for u in &self.units {
            if self.unit_conducts(u, ctx)? {
                on += 1;
            }
        }
        Ok(on)
    }

    fn unit_conducts(&self, u: &Unit, ctx: usize) -> Result<bool, CoreError> {
        let Some(threshold) = u.threshold() else {
            return Ok(false);
        };
        let gate = self.gen.line_value_at(u.line(), ctx)?;
        Ok(gate >= threshold)
    }

    fn check_ctx(&self, ctx: usize) -> Result<(), CoreError> {
        if ctx >= self.contexts {
            Err(CoreError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            })
        } else {
            Ok(())
        }
    }

    /// The CSS generator this switch listens to.
    #[must_use]
    pub fn generator(&self) -> &HybridCssGen {
        &self.gen
    }

    /// The physical programming plan of the current configuration: per
    /// FGMOS unit, the broadcast line its gate watches and the up-threshold
    /// to program (`None` = park). Used by the noisy-programming flow
    /// ([`crate::programmed`]) and by hardware back-ends.
    #[must_use]
    pub fn unit_plan(&self) -> Vec<(LineId, Option<Level>)> {
        self.units
            .iter()
            .map(|u| (u.line(), u.threshold()))
            .collect()
    }
}

impl McSwitch for HybridMcSwitch {
    fn arch(&self) -> ArchKind {
        ArchKind::Hybrid
    }

    fn contexts(&self) -> usize {
        self.contexts
    }

    fn configure(&mut self, on_set: &CtxSet) -> Result<(), CoreError> {
        if on_set.contexts() != self.contexts {
            return Err(CoreError::DomainMismatch {
                config: on_set.contexts(),
                switch: self.contexts,
            });
        }
        for u in &mut self.units {
            let lo = on_set.get(u.lo_ctx());
            let hi = on_set.get(u.hi_ctx());
            u.program = match (lo, hi) {
                (false, false) => UnitProgram::Off,
                (true, false) => UnitProgram::LoOnly,
                (false, true) => UnitProgram::HiOnly,
                (true, true) => UnitProgram::Both,
            };
        }
        self.config = Some(*on_set);
        Ok(())
    }

    fn configured(&self) -> Option<&CtxSet> {
        self.config.as_ref()
    }

    fn is_on(&self, ctx: usize) -> Result<bool, CoreError> {
        self.check_ctx(ctx)?;
        if self.config.is_none() {
            return Err(CoreError::Unconfigured);
        }
        for u in &self.units {
            if self.unit_conducts(u, ctx)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn transistor_count(&self) -> usize {
        self.units.len()
    }

    fn build_netlist(&self) -> Result<Netlist, CoreError> {
        if self.config.is_none() {
            return Err(CoreError::Unconfigured);
        }
        let mut nl = Netlist::new();
        let region = nl.add_region("hybrid-mc-switch");
        let input = nl.add_net("in");
        let out = nl.add_net("out");
        let radix = self.gen.radix();
        let blocks = self.gen.blocks();
        // One MV control per broadcast line the configured units watch; the
        // select network is gate-side support (2 T per FGMOS, shared per
        // column at the switch-block level).
        for u in &self.units {
            let line = u.line();
            let name = line.name(blocks);
            let ctrl = nl
                .find_control(&name)
                .unwrap_or_else(|| nl.add_control(&name, ControlKind::Mv));
            match u.threshold() {
                Some(t) => {
                    nl.add_programmed_fgmos(
                        FgmosMode::UpLiteral,
                        t,
                        radix,
                        &self.params,
                        input,
                        out,
                        ctrl,
                        Some(region),
                    )?;
                }
                None => {
                    let mut d = Fgmos::new(FgmosMode::UpLiteral);
                    d.park(radix, &self.params);
                    nl.add_device(DeviceKind::Fgmos(d), input, out, ctrl, Some(region))?;
                }
            }
        }
        nl.add_support(
            Some(region),
            "line-select network (column-shared in an SB)",
            0,
        );
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_netlist::SwitchSim;

    #[test]
    fn table1_transistor_count() {
        let sw = HybridMcSwitch::new(4).unwrap();
        assert_eq!(sw.transistor_count(), 2);
        assert_eq!(HybridMcSwitch::transistor_count_for(4), 2);
        assert_eq!(sw.select_transistors(), 4);
    }

    #[test]
    fn fig10_scaling_without_mux() {
        // 8 contexts: two 4-context switches in parallel, no MUX → 4 FGMOS.
        assert_eq!(HybridMcSwitch::new(8).unwrap().transistor_count(), 4);
        assert_eq!(HybridMcSwitch::new(16).unwrap().transistor_count(), 8);
        assert_eq!(HybridMcSwitch::new(64).unwrap().transistor_count(), 32);
    }

    #[test]
    fn all_16_functions_of_4_contexts() {
        let mut sw = HybridMcSwitch::new(4).unwrap();
        for s in CtxSet::enumerate_all(4).unwrap() {
            sw.configure(&s).unwrap();
            for ctx in 0..4 {
                assert_eq!(sw.is_on(ctx).unwrap(), s.get(ctx), "set {s} ctx {ctx}");
            }
        }
    }

    #[test]
    fn all_256_functions_of_8_contexts() {
        let mut sw = HybridMcSwitch::new(8).unwrap();
        for s in CtxSet::enumerate_all(8).unwrap() {
            sw.configure(&s).unwrap();
            assert_eq!(sw.on_set_evaluated().unwrap(), s, "set {s}");
        }
    }

    #[test]
    fn exclusive_on_invariant_exhaustive() {
        // The paper's key structural claim: "The proposed MC-switch has only
        // 2 FGMOSs, each of which is exclusively ON."
        let mut sw = HybridMcSwitch::new(4).unwrap();
        for s in CtxSet::enumerate_all(4).unwrap() {
            sw.configure(&s).unwrap();
            for ctx in 0..4 {
                let on = sw.on_fgmos_count(ctx).unwrap();
                assert!(on <= 1, "set {s} ctx {ctx}: {on} FGMOS on");
                assert_eq!(on == 1, s.get(ctx));
            }
        }
    }

    #[test]
    fn unit_program_derivation() {
        let mut sw = HybridMcSwitch::new(4).unwrap();
        // F = {1,3}: S0=1 unit must be Both; S0=0 unit Off.
        sw.configure(&CtxSet::from_ctxs(4, [1, 3]).unwrap())
            .unwrap();
        assert_eq!(
            sw.unit_programs(),
            vec![UnitProgram::Both, UnitProgram::Off]
        );
        // F = {0}: S0=0 unit LoOnly (watches ¬S0·¬Vs, threshold ¬Vs(0)=4).
        sw.configure(&CtxSet::from_ctxs(4, [0]).unwrap()).unwrap();
        assert_eq!(
            sw.unit_programs(),
            vec![UnitProgram::Off, UnitProgram::LoOnly]
        );
        // F = {2}: S0=0 unit HiOnly (watches ¬S0·Vs, threshold Vs(2)=3).
        sw.configure(&CtxSet::from_ctxs(4, [2]).unwrap()).unwrap();
        assert_eq!(
            sw.unit_programs(),
            vec![UnitProgram::Off, UnitProgram::HiOnly]
        );
    }

    #[test]
    fn netlist_behaviour_matches_model() {
        for contexts in [4usize, 8] {
            let mut sw = HybridMcSwitch::new(contexts).unwrap();
            for mask in [0b0101usize, 0b1001, 0b1111, 0b0000, 0b0110] {
                let s = CtxSet::from_mask(contexts, mask as u64).unwrap();
                sw.configure(&s).unwrap();
                let nl = sw.build_netlist().unwrap();
                assert_eq!(nl.transistor_count(), contexts / 2);
                let mut sim = SwitchSim::new(&nl, TechParams::default());
                let gen = sw.generator();
                for ctx in 0..contexts {
                    // bind every line control to its generated value
                    for line in gen.lines() {
                        let name = line.name(gen.blocks());
                        if nl.find_control(&name).is_some() {
                            sim.bind_mv_named(&name, gen.line_value_at(line, ctx).unwrap())
                                .unwrap();
                        }
                    }
                    sim.evaluate().unwrap();
                    let a = nl.find_net("in").unwrap();
                    let b = nl.find_net("out").unwrap();
                    assert_eq!(
                        sim.connected(a, b),
                        sw.is_on(ctx).unwrap(),
                        "contexts={contexts} mask={mask:b} ctx={ctx}"
                    );
                }
            }
        }
    }

    #[test]
    fn five_valued_rail_thresholds_are_on_rail() {
        let mut sw = HybridMcSwitch::new(4).unwrap();
        for s in CtxSet::enumerate_all(4).unwrap() {
            sw.configure(&s).unwrap();
            for u in &sw.units {
                if let Some(t) = u.threshold() {
                    assert!(t.value() >= 1 && t.value() <= 4, "threshold on MV sub-rail");
                }
            }
        }
    }

    #[test]
    fn unconfigured_and_domain_errors() {
        let sw = HybridMcSwitch::new(4).unwrap();
        assert_eq!(sw.is_on(0), Err(CoreError::Unconfigured));
        let mut sw = HybridMcSwitch::new(4).unwrap();
        assert!(matches!(
            sw.configure(&CtxSet::full(8).unwrap()),
            Err(CoreError::DomainMismatch { .. })
        ));
        assert!(HybridMcSwitch::new(6).is_err());
    }
}
