//! The pure multiple-valued FGFP MC-switch of ref \[3\] (paper Figs. 5–6).
//!
//! For 4 contexts (Fig. 5): the switch function is decomposed into at most
//! two window literals (Fig. 3); each window is a **series pair** of FGMOSs
//! (up-literal ∧ down-literal, wired-AND) and the two pairs are **parallel**
//! (wired-OR). Four FGMOSs, always — even when one window (or none) would
//! do. That provisioned-but-unused hardware, plus transistors that turn ON
//! without contributing a conducting path, is the redundancy the paper's
//! hybrid switch eliminates.
//!
//! For more contexts (Fig. 6): 4-context blocks are composed with a binary
//! tree of 2:1 pass MUXes steered by the binary block-select bits, giving
//! the recurrence `T(2C) = 2·T(C) + 2`, i.e. `T(C) = 3C/2 − 2`.

use crate::traits::{ArchKind, McSwitch};
use crate::CoreError;
use mcfpga_device::{FgmosMode, TechParams};
use mcfpga_mvl::window::decompose_windows;
use mcfpga_mvl::{CtxSet, Level, Radix, WindowLiteral};
use mcfpga_netlist::{ControlKind, DeviceKind, NetId, Netlist};

/// Number of parallel window branches per 4-context block.
const BRANCHES: usize = 2;
/// Contexts resolved by one block's MV rail.
const BLOCK: usize = 4;

/// Pure MV-FGFP multi-context switch.
#[derive(Debug, Clone)]
pub struct MvFgfpMcSwitch {
    contexts: usize,
    /// Per block: two branch windows over the block's local 4-level rail
    /// (`None` entries = parked branch).
    blocks: Vec<[WindowLiteral; BRANCHES]>,
    config: Option<CtxSet>,
    params: TechParams,
    /// Ablation knob: when set, unused branches are programmed as
    /// *duplicates* of the first window instead of parked — the behaviour
    /// ref \[3\] describes with "several pass transistors become ON
    /// redundantly for some configuration patterns". Function-preserving
    /// (wired-OR is idempotent) but doubles the ON-transistor count for
    /// single-window configurations.
    duplicate_unused: bool,
}

impl MvFgfpMcSwitch {
    /// Creates a switch for `contexts` contexts (4, 8, 16, 32 or 64).
    pub fn new(contexts: usize) -> Result<Self, CoreError> {
        if !Self::supported(contexts) {
            return Err(CoreError::BadContextCount(contexts));
        }
        Ok(MvFgfpMcSwitch {
            contexts,
            blocks: vec![[WindowLiteral::never(); BRANCHES]; contexts / BLOCK],
            config: None,
            params: TechParams::default(),
            duplicate_unused: false,
        })
    }

    /// Enables/disables the ref-\[3\] duplicate-unused-branch ablation; takes
    /// effect at the next [`McSwitch::configure`].
    pub fn set_duplicate_unused(&mut self, on: bool) {
        self.duplicate_unused = on;
    }

    fn supported(contexts: usize) -> bool {
        (4..=64).contains(&contexts)
            && contexts.is_multiple_of(BLOCK)
            && (contexts / BLOCK).is_power_of_two()
    }

    /// Closed-form transistor count `3·C/2 − 2`.
    #[must_use]
    pub fn transistor_count_for(contexts: usize) -> usize {
        3 * contexts / 2 - 2
    }

    /// The local (4-level) rail windows programmed into block `b`.
    #[must_use]
    pub fn block_windows(&self, b: usize) -> [WindowLiteral; BRANCHES] {
        self.blocks[b]
    }

    /// Number of FGMOS devices (excludes the MUX tree): `C` of them.
    #[must_use]
    pub fn fgmos_count(&self) -> usize {
        self.blocks.len() * BRANCHES * 2
    }

    /// Number of 2:1 pass MUXes in the doubling tree: `C/4 − 1`.
    #[must_use]
    pub fn mux_count(&self) -> usize {
        self.blocks.len() - 1
    }

    /// Branches actually used (non-parked) by the current configuration.
    #[must_use]
    pub fn branches_used(&self) -> usize {
        self.blocks
            .iter()
            .flatten()
            .filter(|w| !w.is_never())
            .count()
    }

    /// Provisioned-but-parked FGMOS transistors under the current
    /// configuration — the Fig. 5 area redundancy ("it requires 4 FGMOSs
    /// even when the function of the MC-switch is a single window literal").
    #[must_use]
    pub fn parked_transistors(&self) -> usize {
        (self.blocks.len() * BRANCHES - self.branches_used()) * 2
    }

    /// How many individual FGMOSs are ON (conducting as devices) in context
    /// `ctx`, whether or not they contribute a source-drain path. The
    /// redundancy of ref \[3\]: "several pass transistors become ON
    /// redundantly for some configuration patterns".
    pub fn on_fgmos_count(&self, ctx: usize) -> Result<usize, CoreError> {
        self.check_ctx(ctx)?;
        if self.config.is_none() {
            return Err(CoreError::Unconfigured);
        }
        let level = Level::new((ctx % BLOCK) as u8);
        let mut on = 0;
        // Every block sees the broadcast rail; inactive blocks' devices still
        // switch (their path is cut downstream by the MUX tree).
        for windows in &self.blocks {
            for w in windows {
                if let Some((up, down)) = w.as_literal_pair() {
                    use mcfpga_mvl::literal::Literal;
                    if up.eval(level) {
                        on += 1;
                    }
                    if down.eval(level) {
                        on += 1;
                    }
                }
            }
        }
        Ok(on)
    }

    fn check_ctx(&self, ctx: usize) -> Result<(), CoreError> {
        if ctx >= self.contexts {
            Err(CoreError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            })
        } else {
            Ok(())
        }
    }

    /// The block-local rail radix (four levels, 0..=3).
    #[must_use]
    pub fn rail_radix(&self) -> Radix {
        Radix::new(BLOCK as u8)
    }
}

impl McSwitch for MvFgfpMcSwitch {
    fn arch(&self) -> ArchKind {
        ArchKind::MvFgfp
    }

    fn contexts(&self) -> usize {
        self.contexts
    }

    fn configure(&mut self, on_set: &CtxSet) -> Result<(), CoreError> {
        if on_set.contexts() != self.contexts {
            return Err(CoreError::DomainMismatch {
                config: on_set.contexts(),
                switch: self.contexts,
            });
        }
        for (b, slot) in self.blocks.iter_mut().enumerate() {
            // Restrict the ON-set to this block's four contexts, relabelled
            // 0..3 on the local rail.
            let local = CtxSet::from_ctxs(BLOCK, (0..BLOCK).filter(|i| on_set.get(b * BLOCK + i)))
                .expect("local domain is 4");
            let windows = decompose_windows(&local);
            debug_assert!(windows.len() <= BRANCHES, "4-ctx block needs ≤2 windows");
            let mut lits = [WindowLiteral::never(); BRANCHES];
            for (i, w) in windows.iter().enumerate() {
                lits[i] =
                    WindowLiteral::new(Level::new(w.lo_ctx as u8), Level::new(w.hi_ctx as u8))
                        .expect("lo <= hi");
            }
            if self.duplicate_unused && !windows.is_empty() {
                let first = lits[0];
                for lit in lits.iter_mut().skip(windows.len()) {
                    *lit = first;
                }
            }
            *slot = lits;
        }
        self.config = Some(*on_set);
        Ok(())
    }

    fn configured(&self) -> Option<&CtxSet> {
        self.config.as_ref()
    }

    fn is_on(&self, ctx: usize) -> Result<bool, CoreError> {
        self.check_ctx(ctx)?;
        if self.config.is_none() {
            return Err(CoreError::Unconfigured);
        }
        use mcfpga_mvl::literal::Literal;
        let block = ctx / BLOCK;
        let level = Level::new((ctx % BLOCK) as u8);
        Ok(self.blocks[block].iter().any(|w| w.eval(level)))
    }

    fn transistor_count(&self) -> usize {
        self.fgmos_count() + 2 * self.mux_count()
    }

    fn build_netlist(&self) -> Result<Netlist, CoreError> {
        if self.config.is_none() {
            return Err(CoreError::Unconfigured);
        }
        let mut nl = Netlist::new();
        let region = nl.add_region("mv-fgfp-mc-switch");
        let input = nl.add_net("in");
        let out = nl.add_net("out");
        let rail = nl.add_control("MvRail", ControlKind::Mv);
        let radix = self.rail_radix();

        // Build each block between `in` and a per-block output net.
        let mut block_outs: Vec<NetId> = Vec::with_capacity(self.blocks.len());
        for (b, windows) in self.blocks.iter().enumerate() {
            let bo = if self.blocks.len() == 1 {
                out
            } else {
                nl.add_net(&format!("blk{b}"))
            };
            for (i, w) in windows.iter().enumerate() {
                let mid = nl.add_net(&format!("b{b}w{i}m"));
                match w.as_literal_pair() {
                    Some((up, down)) => {
                        nl.add_programmed_fgmos(
                            FgmosMode::UpLiteral,
                            up.threshold,
                            radix,
                            &self.params,
                            input,
                            mid,
                            rail,
                            Some(region),
                        )?;
                        nl.add_programmed_fgmos(
                            FgmosMode::DownLiteral,
                            down.threshold,
                            radix,
                            &self.params,
                            mid,
                            bo,
                            rail,
                            Some(region),
                        )?;
                    }
                    None => {
                        // Parked branch: both devices present, never conduct.
                        let mut up = mcfpga_device::Fgmos::new(FgmosMode::UpLiteral);
                        up.park(radix, &self.params);
                        let mut down = mcfpga_device::Fgmos::new(FgmosMode::DownLiteral);
                        down.park(radix, &self.params);
                        nl.add_device(DeviceKind::Fgmos(up), input, mid, rail, Some(region))?;
                        nl.add_device(DeviceKind::Fgmos(down), mid, bo, rail, Some(region))?;
                    }
                }
            }
            block_outs.push(bo);
        }

        // Doubling MUX tree (Fig. 6): level k steered by block-select bit k.
        let mut layer = block_outs;
        let mut bit = 0;
        while layer.len() > 1 {
            let sel = nl.add_control(&format!("S{}", bit + 2), ControlKind::Binary);
            let nsel = nl.add_control(&format!("nS{}", bit + 2), ControlKind::Binary);
            let mut next = Vec::with_capacity(layer.len() / 2);
            for (pair_idx, pair) in layer.chunks_exact(2).enumerate() {
                let merged = if layer.len() == 2 {
                    out
                } else {
                    nl.add_net(&format!("mux{bit}_{pair_idx}"))
                };
                // select=0 → lower block, select=1 → upper block
                nl.add_device(DeviceKind::NmosPass, pair[0], merged, nsel, Some(region))?;
                nl.add_device(DeviceKind::NmosPass, pair[1], merged, sel, Some(region))?;
                next.push(merged);
            }
            layer = next;
            bit += 1;
        }
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_transistor_count() {
        let sw = MvFgfpMcSwitch::new(4).unwrap();
        assert_eq!(sw.transistor_count(), 4);
        assert_eq!(MvFgfpMcSwitch::transistor_count_for(4), 4);
    }

    #[test]
    fn doubling_recurrence() {
        // T(2C) = 2 T(C) + 2
        for c in [4usize, 8, 16, 32] {
            assert_eq!(
                MvFgfpMcSwitch::transistor_count_for(2 * c),
                2 * MvFgfpMcSwitch::transistor_count_for(c) + 2
            );
        }
        assert_eq!(MvFgfpMcSwitch::new(8).unwrap().transistor_count(), 10);
        assert_eq!(MvFgfpMcSwitch::new(8).unwrap().mux_count(), 1);
    }

    #[test]
    fn supported_context_counts() {
        assert!(MvFgfpMcSwitch::new(4).is_ok());
        assert!(MvFgfpMcSwitch::new(8).is_ok());
        assert!(MvFgfpMcSwitch::new(64).is_ok());
        assert!(MvFgfpMcSwitch::new(2).is_err());
        assert!(MvFgfpMcSwitch::new(12).is_err(), "3 blocks not a tree");
        assert!(MvFgfpMcSwitch::new(20).is_err());
    }

    #[test]
    fn all_16_functions_of_4_contexts() {
        let mut sw = MvFgfpMcSwitch::new(4).unwrap();
        for s in CtxSet::enumerate_all(4).unwrap() {
            sw.configure(&s).unwrap();
            for ctx in 0..4 {
                assert_eq!(sw.is_on(ctx).unwrap(), s.get(ctx), "set {s} ctx {ctx}");
            }
        }
    }

    #[test]
    fn all_256_functions_of_8_contexts() {
        let mut sw = MvFgfpMcSwitch::new(8).unwrap();
        for s in CtxSet::enumerate_all(8).unwrap() {
            sw.configure(&s).unwrap();
            assert_eq!(sw.on_set_evaluated().unwrap(), s, "set {s}");
        }
    }

    #[test]
    fn fig3_example_programs_two_windows() {
        let mut sw = MvFgfpMcSwitch::new(4).unwrap();
        sw.configure(&CtxSet::from_ctxs(4, [1, 3]).unwrap())
            .unwrap();
        let [w1, w2] = sw.block_windows(0);
        assert_eq!(w1.bounds(), Some((Level::new(1), Level::new(1))));
        assert_eq!(w2.bounds(), Some((Level::new(3), Level::new(3))));
        assert_eq!(sw.branches_used(), 2);
        assert_eq!(sw.parked_transistors(), 0);
    }

    #[test]
    fn single_window_wastes_a_branch() {
        let mut sw = MvFgfpMcSwitch::new(4).unwrap();
        sw.configure(&CtxSet::from_ctxs(4, [0, 1, 2]).unwrap())
            .unwrap();
        assert_eq!(sw.branches_used(), 1);
        assert_eq!(sw.parked_transistors(), 2, "half the switch idles");
        // the motivating case: still 4 transistors provisioned
        assert_eq!(sw.transistor_count(), 4);
    }

    #[test]
    fn duplicate_unused_ablation_preserves_function_but_doubles_on_count() {
        let f = CtxSet::from_ctxs(4, [0, 1, 2]).unwrap(); // single window
        let mut parked = MvFgfpMcSwitch::new(4).unwrap();
        parked.configure(&f).unwrap();
        let mut dup = MvFgfpMcSwitch::new(4).unwrap();
        dup.set_duplicate_unused(true);
        dup.configure(&f).unwrap();
        for ctx in 0..4 {
            assert_eq!(dup.is_on(ctx).unwrap(), parked.is_on(ctx).unwrap());
            assert_eq!(dup.is_on(ctx).unwrap(), f.get(ctx));
        }
        // at a conducting context, the duplicated branch doubles the ON count
        assert_eq!(parked.on_fgmos_count(1).unwrap(), 2);
        assert_eq!(dup.on_fgmos_count(1).unwrap(), 4);
        // and all branches are "used", so no parked transistors are reported
        assert_eq!(dup.parked_transistors(), 0);
        assert_eq!(parked.parked_transistors(), 2);
    }

    #[test]
    fn redundant_on_transistors_exist() {
        // F = {1,3}: at ctx 3, branch [1,1]'s up-literal (≥1) is ON although
        // the branch does not conduct — a redundantly-ON transistor.
        let mut sw = MvFgfpMcSwitch::new(4).unwrap();
        sw.configure(&CtxSet::from_ctxs(4, [1, 3]).unwrap())
            .unwrap();
        let on = sw.on_fgmos_count(3).unwrap();
        assert_eq!(on, 3, "2 conducting + 1 redundant");
    }

    #[test]
    fn netlist_matches_closed_form_and_behaviour() {
        use mcfpga_netlist::SwitchSim;
        let params = TechParams::default();
        for contexts in [4usize, 8] {
            let mut sw = MvFgfpMcSwitch::new(contexts).unwrap();
            let cfg = CtxSet::from_ctxs(contexts, (0..contexts).step_by(2)).unwrap();
            sw.configure(&cfg).unwrap();
            let nl = sw.build_netlist().unwrap();
            assert_eq!(
                nl.transistor_count(),
                MvFgfpMcSwitch::transistor_count_for(contexts)
            );
            // behavioural equivalence through the switch-level simulator
            let mut sim = SwitchSim::new(&nl, params.clone());
            for ctx in 0..contexts {
                sim.bind_mv_named("MvRail", Level::new((ctx % 4) as u8))
                    .unwrap();
                let blocks = contexts / 4;
                let mut bit = 0;
                let mut b = ctx / 4;
                let mut levels = blocks;
                while levels > 1 {
                    sim.bind_bin_named(&format!("S{}", bit + 2), b & 1 == 1)
                        .unwrap();
                    sim.bind_bin_named(&format!("nS{}", bit + 2), b & 1 == 0)
                        .unwrap();
                    b >>= 1;
                    bit += 1;
                    levels /= 2;
                }
                sim.evaluate().unwrap();
                let in_net = nl.find_net("in").unwrap();
                let out_net = nl.find_net("out").unwrap();
                assert_eq!(
                    sim.connected(in_net, out_net),
                    sw.is_on(ctx).unwrap(),
                    "contexts={contexts} ctx={ctx}"
                );
            }
        }
    }
}
