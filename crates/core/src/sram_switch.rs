//! The conventional SRAM-based MC-switch (paper Fig. 2).
//!
//! `C` SRAM bits (one per context) feed a `C:1` pass-transistor MUX whose
//! select is the binary CSS; the selected configuration bit `G` drives one
//! pass transistor in the routing path. Transistor count:
//!
//! ```text
//! 6·C  (SRAM)  +  2·(C − 1)  (tree MUX)  +  1  (pass Tr)  =  8·C − 1
//! ```
//!
//! which is **31** for `C = 4` — the first row of Table 1.

use crate::traits::{ArchKind, McSwitch};
use crate::CoreError;
use mcfpga_device::{SramCell, TreeMux};
use mcfpga_mvl::CtxSet;
use mcfpga_netlist::{ControlKind, DeviceKind, Netlist};

/// SRAM-based multi-context switch.
#[derive(Debug, Clone)]
pub struct SramMcSwitch {
    contexts: usize,
    cells: Vec<SramCell>,
    mux: TreeMux,
    config: Option<CtxSet>,
}

impl SramMcSwitch {
    /// Creates a switch for `contexts` contexts (power of two, 2–64).
    pub fn new(contexts: usize) -> Result<Self, CoreError> {
        if !(2..=64).contains(&contexts) || !contexts.is_power_of_two() {
            return Err(CoreError::BadContextCount(contexts));
        }
        Ok(SramMcSwitch {
            contexts,
            cells: vec![SramCell::new(); contexts],
            mux: TreeMux::new(contexts).map_err(CoreError::Device)?,
            config: None,
        })
    }

    /// Closed-form transistor count `8·C − 1`.
    #[must_use]
    pub fn transistor_count_for(contexts: usize) -> usize {
        8 * contexts - 1
    }

    /// The stored configuration bit for `ctx` (what the MUX would output).
    pub fn stored_bit(&self, ctx: usize) -> Result<bool, CoreError> {
        if ctx >= self.contexts {
            return Err(CoreError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            });
        }
        Ok(self.cells[ctx].read())
    }

    /// Simulates supply loss: all configuration bits evaporate (contrast
    /// with the non-volatile FGFP switches).
    pub fn power_cycle(&mut self) {
        for c in &mut self.cells {
            c.power_down();
            c.power_up();
        }
        self.config = None;
    }

    /// Static power of the configuration storage.
    #[must_use]
    pub fn static_power_w(&self, params: &mcfpga_device::TechParams) -> f64 {
        self.cells.iter().map(|c| c.static_power_w(params)).sum()
    }
}

impl McSwitch for SramMcSwitch {
    fn arch(&self) -> ArchKind {
        ArchKind::Sram
    }

    fn contexts(&self) -> usize {
        self.contexts
    }

    fn configure(&mut self, on_set: &CtxSet) -> Result<(), CoreError> {
        if on_set.contexts() != self.contexts {
            return Err(CoreError::DomainMismatch {
                config: on_set.contexts(),
                switch: self.contexts,
            });
        }
        for ctx in 0..self.contexts {
            self.cells[ctx].write(on_set.get(ctx));
        }
        self.config = Some(*on_set);
        Ok(())
    }

    fn configured(&self) -> Option<&CtxSet> {
        self.config.as_ref()
    }

    fn is_on(&self, ctx: usize) -> Result<bool, CoreError> {
        if self.config.is_none() {
            return Err(CoreError::Unconfigured);
        }
        // The binary CSS steers the MUX; the selected SRAM bit is G.
        let bits: Vec<bool> = self.cells.iter().map(SramCell::read).collect();
        self.mux
            .select(&bits, ctx)
            .map_err(|_| CoreError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            })
    }

    fn transistor_count(&self) -> usize {
        self.cells.len() * 6 + self.mux.transistor_count() + 1
    }

    fn build_netlist(&self) -> Result<Netlist, CoreError> {
        if self.config.is_none() {
            return Err(CoreError::Unconfigured);
        }
        let mut nl = Netlist::new();
        let region = nl.add_region("sram-mc-switch");
        let a = nl.add_net("in");
        let b = nl.add_net("out");
        // The selected configuration bit G gates the routing pass transistor.
        let g = nl.add_control("G", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, b, g, Some(region))?;
        nl.add_sram_cells(Some(region), self.contexts);
        nl.add_support(
            Some(region),
            "config C:1 tree MUX",
            self.mux.transistor_count(),
        );
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_device::TechParams;

    #[test]
    fn table1_transistor_count() {
        let sw = SramMcSwitch::new(4).unwrap();
        assert_eq!(sw.transistor_count(), 31);
        assert_eq!(SramMcSwitch::transistor_count_for(4), 31);
    }

    #[test]
    fn closed_form_matches_instance_for_all_sizes() {
        for c in [2usize, 4, 8, 16, 32, 64] {
            let sw = SramMcSwitch::new(c).unwrap();
            assert_eq!(sw.transistor_count(), SramMcSwitch::transistor_count_for(c));
        }
    }

    #[test]
    fn configure_then_query_all_16_functions() {
        let mut sw = SramMcSwitch::new(4).unwrap();
        for s in CtxSet::enumerate_all(4).unwrap() {
            sw.configure(&s).unwrap();
            for ctx in 0..4 {
                assert_eq!(sw.is_on(ctx).unwrap(), s.get(ctx), "set {s} ctx {ctx}");
            }
            assert_eq!(sw.on_set_evaluated().unwrap(), s);
        }
    }

    #[test]
    fn unconfigured_is_an_error() {
        let sw = SramMcSwitch::new(4).unwrap();
        assert_eq!(sw.is_on(0), Err(CoreError::Unconfigured));
    }

    #[test]
    fn domain_mismatch_rejected() {
        let mut sw = SramMcSwitch::new(4).unwrap();
        let cfg8 = CtxSet::full(8).unwrap();
        assert!(matches!(
            sw.configure(&cfg8),
            Err(CoreError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn volatility_on_power_cycle() {
        let mut sw = SramMcSwitch::new(4).unwrap();
        sw.configure(&CtxSet::full(4).unwrap()).unwrap();
        assert!(sw.is_on(2).unwrap());
        sw.power_cycle();
        assert_eq!(sw.is_on(2), Err(CoreError::Unconfigured));
        assert!(!sw.stored_bit(2).unwrap(), "bits lost at power loss");
    }

    #[test]
    fn netlist_count_matches_closed_form() {
        let mut sw = SramMcSwitch::new(4).unwrap();
        sw.configure(&CtxSet::from_ctxs(4, [1, 3]).unwrap())
            .unwrap();
        let nl = sw.build_netlist().unwrap();
        assert_eq!(nl.transistor_count(), 31);
        assert_eq!(nl.sram_cell_count(), 4);
        assert_eq!(nl.support_transistor_count(), 6);
    }

    #[test]
    fn static_power_scales_with_cells() {
        let p = TechParams::default();
        let sw4 = SramMcSwitch::new(4).unwrap();
        let sw8 = SramMcSwitch::new(8).unwrap();
        assert!(sw8.static_power_w(&p) > sw4.static_power_w(&p));
        assert_eq!(sw4.static_power_w(&p), 4.0 * p.sram_leak_w);
    }

    #[test]
    fn bad_context_counts() {
        assert!(SramMcSwitch::new(0).is_err());
        assert!(SramMcSwitch::new(3).is_err());
        assert!(SramMcSwitch::new(128).is_err());
    }
}
