//! Context-switch latency model.
//!
//! What limits how fast an MC-FPGA can hop contexts is the depth of logic
//! between the broadcast CSS and the routing switch's conduction state:
//!
//! * **SRAM switch** — the binary CSS must ripple through the `C:1`
//!   configuration MUX: `log2(C)` pass-transistor stages plus the output
//!   settle.
//! * **MV-FGFP switch** — the FGMOS pair responds directly, but beyond 4
//!   contexts the Fig. 6 doubling MUX adds `log2(C/4)` stages.
//! * **Hybrid switch** — the FGMOS responds directly to the broadcast line
//!   at *every* context count; the depth is constant. This is the
//!   "high scalability" of the paper's title claim, expressed in time.
//!
//! Per-stage constants are representative pass-transistor RC numbers
//! (documented model assumptions, not fitted silicon data).

use crate::traits::ArchKind;

/// Latency model constants (picoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// One pass-transistor MUX stage.
    pub mux_stage_ps: f64,
    /// FGMOS gate response (threshold comparison against the settled rail).
    pub fgmos_response_ps: f64,
    /// Broadcast rail settling (binary swing).
    pub rail_settle_bin_ps: f64,
    /// Broadcast rail settling (multi-level swing — slower, smaller margins).
    pub rail_settle_mv_ps: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            mux_stage_ps: 35.0,
            fgmos_response_ps: 55.0,
            rail_settle_bin_ps: 40.0,
            rail_settle_mv_ps: 90.0,
        }
    }
}

/// Context-switch latency of one switch, in picoseconds.
#[must_use]
pub fn switch_latency_ps(arch: ArchKind, contexts: usize, p: &TimingParams) -> f64 {
    let log2 = |x: usize| (usize::BITS - x.leading_zeros() - 1) as f64;
    match arch {
        ArchKind::Sram => p.rail_settle_bin_ps + log2(contexts) * p.mux_stage_ps,
        ArchKind::MvFgfp => {
            let mux_depth = if contexts > 4 {
                log2(contexts / 4)
            } else {
                0.0
            };
            p.rail_settle_mv_ps + p.fgmos_response_ps + mux_depth * p.mux_stage_ps
        }
        ArchKind::Hybrid => p.rail_settle_mv_ps + p.fgmos_response_ps,
    }
}

/// Latency table across context counts, per architecture — the scalability
/// story in one sweep.
#[must_use]
pub fn latency_sweep(context_counts: &[usize], p: &TimingParams) -> Vec<(usize, [f64; 3])> {
    context_counts
        .iter()
        .map(|&c| {
            (
                c,
                [
                    switch_latency_ps(ArchKind::Sram, c, p),
                    switch_latency_ps(ArchKind::MvFgfp, c, p),
                    switch_latency_ps(ArchKind::Hybrid, c, p),
                ],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_latency_is_constant_in_contexts() {
        let p = TimingParams::default();
        let l4 = switch_latency_ps(ArchKind::Hybrid, 4, &p);
        let l64 = switch_latency_ps(ArchKind::Hybrid, 64, &p);
        assert_eq!(l4, l64);
    }

    #[test]
    fn sram_latency_grows_logarithmically() {
        let p = TimingParams::default();
        let l4 = switch_latency_ps(ArchKind::Sram, 4, &p);
        let l16 = switch_latency_ps(ArchKind::Sram, 16, &p);
        let l64 = switch_latency_ps(ArchKind::Sram, 64, &p);
        assert!(l16 > l4);
        assert!(l64 > l16);
        assert!((l16 - l4 - 2.0 * p.mux_stage_ps).abs() < 1e-9);
    }

    #[test]
    fn mv_gains_mux_stages_beyond_4_contexts() {
        let p = TimingParams::default();
        let l4 = switch_latency_ps(ArchKind::MvFgfp, 4, &p);
        let l8 = switch_latency_ps(ArchKind::MvFgfp, 8, &p);
        assert!((l8 - l4 - p.mux_stage_ps).abs() < 1e-9);
        // hybrid beats MV at every C > 4
        assert!(switch_latency_ps(ArchKind::Hybrid, 8, &p) < l8);
    }

    #[test]
    fn sweep_shape() {
        let p = TimingParams::default();
        let rows = latency_sweep(&[4, 8, 16], &p);
        assert_eq!(rows.len(), 3);
        // hybrid column constant
        assert_eq!(rows[0].1[2], rows[2].1[2]);
    }
}
