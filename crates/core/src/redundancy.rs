//! Quantifying the redundancy the hybrid CSS removes (paper §1–§2).
//!
//! Two distinct inefficiencies of the pure MV-FGFP switch:
//!
//! 1. **Provisioned waste** — the switch always carries `⌈C/2⌉` window
//!    branches (2 series FGMOSs each) even when the configured function
//!    needs fewer ("it requires 4 FGMOSs even when the function of the
//!    MC-switch is a single window literal").
//! 2. **Redundant ON transistors** — "several pass transistors become ON
//!    redundantly for some configuration patterns": an up-literal FGMOS of
//!    a non-conducting branch still turns on whenever the rail exceeds its
//!    threshold.
//!
//! The hybrid switch is exclusive-ON: across *all* configurations and
//! contexts, at most one FGMOS conducts. [`RedundancyReport`] measures both
//! effects exhaustively.

use crate::hybrid_switch::HybridMcSwitch;
use crate::mv_switch::MvFgfpMcSwitch;
use crate::traits::McSwitch;
use crate::CoreError;
use mcfpga_mvl::CtxSet;

/// Aggregate redundancy statistics over every configuration × context of a
/// context count.
#[derive(Debug, Clone, PartialEq)]
pub struct RedundancyReport {
    /// Context count analysed.
    pub contexts: usize,
    /// Configurations enumerated (`2^contexts`).
    pub configs: usize,
    /// Mean ON-FGMOS count per (config, ctx) pair — MV switch.
    pub mv_mean_on: f64,
    /// Worst-case simultaneous ON FGMOSs — MV switch.
    pub mv_max_on: usize,
    /// Mean ON-FGMOS count — hybrid switch.
    pub hybrid_mean_on: f64,
    /// Worst-case simultaneous ON FGMOSs — hybrid switch (always ≤ 1).
    pub hybrid_max_on: usize,
    /// Mean parked (wasted) transistors per configuration — MV switch.
    pub mv_mean_parked: f64,
    /// Configurations in which at least one MV branch is parked.
    pub mv_configs_with_waste: usize,
}

/// Runs the exhaustive redundancy comparison for `contexts ≤ 16`.
pub fn measure(contexts: usize) -> Result<RedundancyReport, CoreError> {
    assert!(contexts <= 16, "redundancy measurement is exhaustive");
    let mut mv = MvFgfpMcSwitch::new(contexts)?;
    let mut hy = HybridMcSwitch::new(contexts)?;
    let mut configs = 0usize;
    let mut mv_on_sum = 0usize;
    let mut mv_max = 0usize;
    let mut hy_on_sum = 0usize;
    let mut hy_max = 0usize;
    let mut parked_sum = 0usize;
    let mut wasteful = 0usize;
    for s in CtxSet::enumerate_all(contexts).map_err(|_| CoreError::BadContextCount(contexts))? {
        mv.configure(&s)?;
        hy.configure(&s)?;
        configs += 1;
        if mv.parked_transistors() > 0 {
            wasteful += 1;
        }
        parked_sum += mv.parked_transistors();
        for ctx in 0..contexts {
            let m = mv.on_fgmos_count(ctx)?;
            let h = hy.on_fgmos_count(ctx)?;
            mv_on_sum += m;
            hy_on_sum += h;
            mv_max = mv_max.max(m);
            hy_max = hy_max.max(h);
        }
    }
    let pairs = (configs * contexts) as f64;
    Ok(RedundancyReport {
        contexts,
        configs,
        mv_mean_on: mv_on_sum as f64 / pairs,
        mv_max_on: mv_max,
        hybrid_mean_on: hy_on_sum as f64 / pairs,
        hybrid_max_on: hy_max,
        mv_mean_parked: parked_sum as f64 / configs as f64,
        mv_configs_with_waste: wasteful,
    })
}

impl std::fmt::Display for RedundancyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "redundancy over {} contexts ({} configurations):",
            self.contexts, self.configs
        )?;
        writeln!(
            f,
            "  MV-FGFP : mean ON FGMOS {:.3}, max {}, mean parked Tr {:.3}, wasteful configs {}",
            self.mv_mean_on, self.mv_max_on, self.mv_mean_parked, self.mv_configs_with_waste
        )?;
        write!(
            f,
            "  Hybrid  : mean ON FGMOS {:.3}, max {} (exclusive-ON)",
            self.hybrid_mean_on, self.hybrid_max_on
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_is_exclusive_on_c4() {
        let r = measure(4).unwrap();
        assert_eq!(r.hybrid_max_on, 1);
        assert!(r.mv_max_on > 1, "MV switch has redundant ON transistors");
        assert!(r.mv_mean_on > r.hybrid_mean_on);
    }

    #[test]
    fn hybrid_is_exclusive_on_c8() {
        let r = measure(8).unwrap();
        assert_eq!(r.hybrid_max_on, 1);
        assert!(r.mv_max_on >= 4);
    }

    #[test]
    fn mv_waste_exists_for_most_configs() {
        let r = measure(4).unwrap();
        // Of the 16 functions of 4 contexts, only the 5 two-run ones
        // ({0,2}, {1,3}, {0,3}, {0,1,3}, {0,2,3}) use both branches; the
        // other 11 park at least one.
        assert_eq!(r.mv_configs_with_waste, 11);
        assert!(r.mv_mean_parked > 0.0);
    }

    #[test]
    fn hybrid_mean_on_equals_on_probability() {
        // For the hybrid switch, ON count == 1 exactly when the function is
        // ON, so the mean equals the fraction of ON (config, ctx) pairs: 1/2.
        let r = measure(4).unwrap();
        assert!((r.hybrid_mean_on - 0.5).abs() < 1e-12);
    }
}
