//! The [`McSwitch`] abstraction shared by the three architectures.

use crate::CoreError;
use mcfpga_mvl::CtxSet;
use mcfpga_netlist::Netlist;

/// Which MC-switch architecture a value represents (for reports/tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ArchKind {
    /// Conventional SRAM-based switch (Fig. 2).
    Sram,
    /// Pure multiple-valued FGFP switch of ref \[3\] (Figs. 5–6).
    MvFgfp,
    /// Proposed hybrid MV/B switch (Figs. 9–10).
    Hybrid,
}

impl ArchKind {
    /// Table row label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ArchKind::Sram => "SRAM-based one",
            ArchKind::MvFgfp => "Only MV-FGFP-based one [2]",
            ArchKind::Hybrid => "Proposed one",
        }
    }

    /// All architectures, in the paper's table order.
    #[must_use]
    pub fn all() -> [ArchKind; 3] {
        [ArchKind::Sram, ArchKind::MvFgfp, ArchKind::Hybrid]
    }
}

impl std::fmt::Display for ArchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A multi-context switch: one programmable cross-point whose ON/OFF state
/// is selected by the broadcast context-switching signal.
pub trait McSwitch {
    /// Architecture tag.
    fn arch(&self) -> ArchKind;

    /// Number of contexts the switch supports.
    fn contexts(&self) -> usize;

    /// Programs the switch so it conducts exactly in `on_set`'s contexts.
    fn configure(&mut self, on_set: &CtxSet) -> Result<(), CoreError>;

    /// The configured ON-set, if configured.
    fn configured(&self) -> Option<&CtxSet>;

    /// Does the switch conduct in context `ctx`?
    fn is_on(&self, ctx: usize) -> Result<bool, CoreError>;

    /// Physical transistor count of one switch instance (Table 1 accounting:
    /// excludes shared signal-generation and, for the hybrid switch,
    /// excludes the per-column shared select network — see
    /// [`HybridMcSwitch::select_transistors`](crate::HybridMcSwitch::select_transistors)).
    fn transistor_count(&self) -> usize;

    /// Builds a structural netlist of the switch between two nets named
    /// `"in"` and `"out"`, with control inputs named after the CSS lines the
    /// architecture consumes. Requires the switch to be configured.
    fn build_netlist(&self) -> Result<Netlist, CoreError>;

    /// Convenience: checks the whole configured function at once.
    fn on_set_evaluated(&self) -> Result<CtxSet, CoreError> {
        let mut s = CtxSet::empty(self.contexts()).map_err(|_| CoreError::Unconfigured)?;
        for ctx in 0..self.contexts() {
            if self.is_on(ctx)? {
                s.insert(ctx).expect("ctx in domain");
            }
        }
        Ok(s)
    }
}

/// A concrete MC-switch of any architecture (avoids `Box<dyn>` where clone
/// and value semantics are wanted, e.g. arrays of switches in a switch
/// block).
#[derive(Debug, Clone)]
pub enum AnySwitch {
    /// SRAM-based switch.
    Sram(crate::SramMcSwitch),
    /// Pure MV-FGFP switch.
    MvFgfp(crate::MvFgfpMcSwitch),
    /// Proposed hybrid switch.
    Hybrid(crate::HybridMcSwitch),
}

impl AnySwitch {
    /// Builds a switch of the given architecture.
    pub fn build(arch: ArchKind, contexts: usize) -> Result<Self, crate::CoreError> {
        Ok(match arch {
            ArchKind::Sram => AnySwitch::Sram(crate::SramMcSwitch::new(contexts)?),
            ArchKind::MvFgfp => AnySwitch::MvFgfp(crate::MvFgfpMcSwitch::new(contexts)?),
            ArchKind::Hybrid => AnySwitch::Hybrid(crate::HybridMcSwitch::new(contexts)?),
        })
    }

    fn inner(&self) -> &dyn McSwitch {
        match self {
            AnySwitch::Sram(s) => s,
            AnySwitch::MvFgfp(s) => s,
            AnySwitch::Hybrid(s) => s,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn McSwitch {
        match self {
            AnySwitch::Sram(s) => s,
            AnySwitch::MvFgfp(s) => s,
            AnySwitch::Hybrid(s) => s,
        }
    }
}

impl McSwitch for AnySwitch {
    fn arch(&self) -> ArchKind {
        self.inner().arch()
    }
    fn contexts(&self) -> usize {
        self.inner().contexts()
    }
    fn configure(&mut self, on_set: &CtxSet) -> Result<(), crate::CoreError> {
        self.inner_mut().configure(on_set)
    }
    fn configured(&self) -> Option<&CtxSet> {
        self.inner().configured()
    }
    fn is_on(&self, ctx: usize) -> Result<bool, crate::CoreError> {
        self.inner().is_on(ctx)
    }
    fn transistor_count(&self) -> usize {
        self.inner().transistor_count()
    }
    fn build_netlist(&self) -> Result<Netlist, crate::CoreError> {
        self.inner().build_netlist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_switch_dispatches() {
        for arch in ArchKind::all() {
            let mut sw = AnySwitch::build(arch, 4).unwrap();
            assert_eq!(sw.arch(), arch);
            let s = CtxSet::from_ctxs(4, [0, 3]).unwrap();
            sw.configure(&s).unwrap();
            assert!(sw.is_on(0).unwrap());
            assert!(!sw.is_on(1).unwrap());
            assert!(sw.is_on(3).unwrap());
        }
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(ArchKind::Sram.label(), "SRAM-based one");
        assert_eq!(ArchKind::MvFgfp.label(), "Only MV-FGFP-based one [2]");
        assert_eq!(ArchKind::Hybrid.label(), "Proposed one");
        assert_eq!(ArchKind::all().len(), 3);
    }
}
