//! Cross-architecture equivalence checking.
//!
//! The three MC-switch architectures are meant to be drop-in replacements:
//! for any configured ON-set, all three must conduct in exactly the same
//! contexts. This module checks that claim — exhaustively for small context
//! counts, by sampling for large ones — and is reused by the integration
//! tests and the `repro` harness.

use crate::hybrid_switch::HybridMcSwitch;
use crate::mv_switch::MvFgfpMcSwitch;
use crate::sram_switch::SramMcSwitch;
use crate::traits::McSwitch;
use crate::CoreError;
use mcfpga_mvl::CtxSet;

/// A disagreement between two architectures.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// The configuration under which they disagreed.
    pub on_set: CtxSet,
    /// The context where conduction differed.
    pub ctx: usize,
    /// `(architecture label, observed conduction)` for each switch.
    pub observed: Vec<(&'static str, bool)>,
}

/// Builds the three architectures for `contexts` contexts.
pub fn build_all(contexts: usize) -> Result<Vec<Box<dyn McSwitch>>, CoreError> {
    Ok(vec![
        Box::new(SramMcSwitch::new(contexts)?),
        Box::new(MvFgfpMcSwitch::new(contexts)?),
        Box::new(HybridMcSwitch::new(contexts)?),
    ])
}

/// Checks one configuration across all three architectures; returns
/// mismatches (empty = agreement).
pub fn check_config(
    switches: &mut [Box<dyn McSwitch>],
    on_set: &CtxSet,
) -> Result<Vec<Mismatch>, CoreError> {
    for sw in switches.iter_mut() {
        sw.configure(on_set)?;
    }
    let mut mismatches = Vec::new();
    for ctx in 0..on_set.contexts() {
        let expected = on_set.get(ctx);
        let observed: Vec<(&'static str, bool)> = switches
            .iter()
            .map(|sw| (sw.arch().label(), sw.is_on(ctx).expect("configured switch")))
            .collect();
        if observed.iter().any(|(_, on)| *on != expected) {
            mismatches.push(Mismatch {
                on_set: *on_set,
                ctx,
                observed,
            });
        }
    }
    Ok(mismatches)
}

/// Exhaustive equivalence over all `2^contexts` configurations
/// (`contexts ≤ 16` to stay tractable). Returns total configurations checked.
pub fn check_exhaustive(contexts: usize) -> Result<usize, CoreError> {
    assert!(contexts <= 16, "exhaustive check limited to 16 contexts");
    let mut switches = build_all(contexts)?;
    let mut checked = 0;
    for s in CtxSet::enumerate_all(contexts).map_err(|_| CoreError::BadContextCount(contexts))? {
        let mismatches = check_config(&mut switches, &s)?;
        assert!(
            mismatches.is_empty(),
            "architectures disagree on {s}: {mismatches:?}"
        );
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_4_contexts() {
        assert_eq!(check_exhaustive(4).unwrap(), 16);
    }

    #[test]
    fn exhaustive_8_contexts() {
        assert_eq!(check_exhaustive(8).unwrap(), 256);
    }

    #[test]
    fn exhaustive_16_contexts() {
        assert_eq!(check_exhaustive(16).unwrap(), 65_536);
    }

    #[test]
    fn check_config_reports_agreement() {
        let mut switches = build_all(4).unwrap();
        let s = CtxSet::from_ctxs(4, [1, 3]).unwrap();
        assert!(check_config(&mut switches, &s).unwrap().is_empty());
    }
}
