//! # mcfpga-core — the paper's contribution: multi-context switches
//!
//! Three interchangeable implementations of the **multi-context switch**
//! (MC-switch), the programmable cross-point that either connects or isolates
//! a pair of routing wires depending on the active context:
//!
//! | type | paper figure | storage | per-switch transistors (C = 4) |
//! |------|--------------|---------|--------------------------------|
//! | [`SramMcSwitch`] | Fig. 2 | C × 6T SRAM + C:1 MUX + pass Tr | 31 |
//! | [`MvFgfpMcSwitch`] | Figs. 5–6 | window-literal FGMOS pairs (+ MUX per doubling) | 4 |
//! | [`HybridMcSwitch`] | Figs. 9–10 | 2 FGMOS per 4-context block, **no MUX** | 2 |
//!
//! All three implement [`McSwitch`]: configure with an ON-set
//! ([`mcfpga_mvl::CtxSet`]), then query conduction per context. The
//! [`equivalence`] module proves the three agree exhaustively; the
//! [`redundancy`] module quantifies the waste the hybrid signal removes; the
//! [`timing`] module models context-switch latency (the hybrid switch is the
//! only one whose depth does not grow with the context count).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod equivalence;
pub mod hybrid_switch;
pub mod mv_switch;
pub mod programmed;
pub mod redundancy;
pub mod sram_switch;
pub mod timing;
pub mod traits;

pub use hybrid_switch::HybridMcSwitch;
pub use mv_switch::MvFgfpMcSwitch;
pub use programmed::ProgrammedHybrid;
pub use sram_switch::SramMcSwitch;
pub use traits::{AnySwitch, ArchKind, McSwitch};

/// Errors from MC-switch configuration and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Context out of range.
    ContextOutOfRange {
        /// Offending context id.
        ctx: usize,
        /// Switch's context count.
        contexts: usize,
    },
    /// Context count unsupported by the architecture.
    BadContextCount(usize),
    /// Configuration's context domain does not match the switch.
    DomainMismatch {
        /// Domain the configuration was built over.
        config: usize,
        /// Domain the switch was built over.
        switch: usize,
    },
    /// Switch queried before being configured.
    Unconfigured,
    /// Underlying CSS failure.
    Css(mcfpga_css::CssError),
    /// Underlying device failure.
    Device(mcfpga_device::DeviceError),
    /// Underlying netlist failure.
    Netlist(mcfpga_netlist::NetlistError),
}

impl From<mcfpga_css::CssError> for CoreError {
    fn from(e: mcfpga_css::CssError) -> Self {
        CoreError::Css(e)
    }
}

impl From<mcfpga_device::DeviceError> for CoreError {
    fn from(e: mcfpga_device::DeviceError) -> Self {
        CoreError::Device(e)
    }
}

impl From<mcfpga_netlist::NetlistError> for CoreError {
    fn from(e: mcfpga_netlist::NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::ContextOutOfRange { ctx, contexts } => {
                write!(f, "context {ctx} out of range ({contexts} contexts)")
            }
            CoreError::BadContextCount(c) => write!(f, "unsupported context count {c}"),
            CoreError::DomainMismatch { config, switch } => {
                write!(f, "config domain {config} != switch domain {switch}")
            }
            CoreError::Unconfigured => write!(f, "switch not configured"),
            CoreError::Css(e) => write!(f, "css: {e}"),
            CoreError::Device(e) => write!(f, "device: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}
