//! Property tests for the MC-switch architectures.

use mcfpga_core::equivalence::{build_all, check_config};
use mcfpga_core::{
    ArchKind, HybridMcSwitch, McSwitch, MvFgfpMcSwitch, ProgrammedHybrid, SramMcSwitch,
};
use mcfpga_device::{Programmer, TechParams};
use mcfpga_mvl::CtxSet;
use proptest::prelude::*;

fn arb_ctxset(contexts: usize) -> impl Strategy<Value = CtxSet> {
    let dom = if contexts == 64 {
        u64::MAX
    } else {
        (1u64 << contexts) - 1
    };
    prop::bits::u64::masked(dom).prop_map(move |m| CtxSet::from_mask(contexts, m).unwrap())
}

proptest! {
    /// Configure→evaluate is the identity on ON-sets, per architecture.
    #[test]
    fn configure_evaluate_roundtrip(s in arb_ctxset(16), arch_idx in 0usize..3) {
        let arch = ArchKind::all()[arch_idx];
        let mut sw = mcfpga_core::AnySwitch::build(arch, 16).unwrap();
        sw.configure(&s).unwrap();
        prop_assert_eq!(sw.on_set_evaluated().unwrap(), s);
    }

    /// The three architectures agree on random 32-context configurations.
    #[test]
    fn agreement_at_32_contexts(s in arb_ctxset(32)) {
        let mut switches = build_all(32).unwrap();
        prop_assert!(check_config(&mut switches, &s).unwrap().is_empty());
    }

    /// Reconfiguration is stateless: applying config B after A equals
    /// applying B to a fresh switch.
    #[test]
    fn reconfiguration_is_stateless(
        a in arb_ctxset(8),
        b in arb_ctxset(8),
        arch_idx in 0usize..3,
    ) {
        let arch = ArchKind::all()[arch_idx];
        let mut reused = mcfpga_core::AnySwitch::build(arch, 8).unwrap();
        reused.configure(&a).unwrap();
        reused.configure(&b).unwrap();
        let mut fresh = mcfpga_core::AnySwitch::build(arch, 8).unwrap();
        fresh.configure(&b).unwrap();
        prop_assert_eq!(
            reused.on_set_evaluated().unwrap(),
            fresh.on_set_evaluated().unwrap()
        );
    }

    /// The hybrid switch's transistor count is exactly half the MV one's
    /// FGMOS count at every supported context count, and the SRAM closed
    /// forms hold.
    #[test]
    fn closed_forms(contexts in prop::sample::select(vec![4usize, 8, 16, 32, 64])) {
        prop_assert_eq!(
            HybridMcSwitch::transistor_count_for(contexts) * 2,
            contexts
        );
        prop_assert_eq!(
            MvFgfpMcSwitch::transistor_count_for(contexts),
            3 * contexts / 2 - 2
        );
        prop_assert_eq!(
            SramMcSwitch::transistor_count_for(contexts),
            8 * contexts - 1
        );
    }

    /// Physically programmed switches (noisy thresholds) behave like the
    /// model for random configurations.
    #[test]
    fn noisy_programming_robust(s in arb_ctxset(8), seed in 0u64..500) {
        let mut prog = Programmer::new(seed, TechParams::default());
        let mut sw = ProgrammedHybrid::new(8).unwrap();
        sw.configure(&s, &mut prog).unwrap();
        for ctx in 0..8 {
            prop_assert_eq!(sw.is_on_physical(ctx).unwrap(), s.get(ctx));
        }
    }

    /// MV-switch parked transistors + used-branch transistors = all FGMOSs.
    #[test]
    fn mv_branch_accounting(s in arb_ctxset(8)) {
        let mut sw = MvFgfpMcSwitch::new(8).unwrap();
        sw.configure(&s).unwrap();
        prop_assert_eq!(
            sw.branches_used() * 2 + sw.parked_transistors(),
            sw.fgmos_count()
        );
    }
}
