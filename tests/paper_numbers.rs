//! Integration: every number the paper's evaluation section reports, checked
//! end to end through the public facade.

use mcfpga::core::{ArchKind, HybridMcSwitch, McSwitch};
use mcfpga::cost::{switch_transistors, table1};
use mcfpga::css::GeneratorCost;
use mcfpga::prelude::*;
use mcfpga::switchblock::sb_transistors;

#[test]
fn table1_exact() {
    assert_eq!(switch_transistors(ArchKind::Sram, 4), 31);
    assert_eq!(switch_transistors(ArchKind::MvFgfp, 4), 4);
    assert_eq!(switch_transistors(ArchKind::Hybrid, 4), 2);
}

#[test]
fn table1_headline_ratios() {
    // §1: "The transistor count of the proposed MC-switch is reduced to 7%"
    // (2/31 = 6.5%, rounded up in the paper's abstract) "and 50%".
    let rows = table1(4);
    let vs_sram = rows[2].transistors as f64 / rows[0].transistors as f64;
    assert!(vs_sram > 0.06 && vs_sram < 0.07);
    assert_eq!(rows[2].transistors * 2, rows[1].transistors);
}

#[test]
fn table2_exact() {
    assert_eq!(sb_transistors(ArchKind::Sram, 10, 4), 3100);
    assert_eq!(sb_transistors(ArchKind::MvFgfp, 10, 4), 400);
    assert_eq!(sb_transistors(ArchKind::Hybrid, 10, 4), 240);
}

#[test]
fn table2_headline_ratios() {
    // §3: "reduced to 8% and 60% of that of the SRAM-based one and the
    // FGFP-based one using only MV-CSS".
    let sram = sb_transistors(ArchKind::Sram, 10, 4) as f64;
    let mv = sb_transistors(ArchKind::MvFgfp, 10, 4) as f64;
    let hy = sb_transistors(ArchKind::Hybrid, 10, 4) as f64;
    assert!((hy / sram - 0.08).abs() < 0.005);
    assert!((hy / mv - 0.60).abs() < 1e-9);
}

#[test]
fn instances_match_closed_forms() {
    // The counts in the tables come from closed forms; the switch objects
    // and their structural netlists must agree.
    for arch in ArchKind::all() {
        let mut sw = AnySwitch::build(arch, 4).unwrap();
        assert_eq!(sw.transistor_count(), switch_transistors(arch, 4));
        sw.configure(&CtxSet::from_ctxs(4, [1, 3]).unwrap())
            .unwrap();
        let nl = sw.build_netlist().unwrap();
        assert_eq!(
            nl.transistor_count(),
            switch_transistors(arch, 4),
            "{arch:?}"
        );
    }
}

#[test]
fn eight_context_scaling_claims() {
    // Fig. 6 vs Fig. 10: the MV switch needs a MUX per doubling, the hybrid
    // does not.
    assert_eq!(switch_transistors(ArchKind::MvFgfp, 8), 10); // 2×4 + 2
    assert_eq!(switch_transistors(ArchKind::Hybrid, 8), 4); // 2×2 + 0
    assert_eq!(HybridMcSwitch::select_transistors_for(8), 8);
}

#[test]
fn generator_overhead_negligible() {
    // §1: "they can be shared among several MC-switches, and its overhead
    // is negligible" — under 1% of a 10×10 SB's own transistor count.
    let g = GeneratorCost::for_contexts(4).unwrap();
    let sb = sb_transistors(ArchKind::Hybrid, 10, 4);
    assert!((g.total() as f64) < 0.1 * sb as f64);
    // one generator across a single 10×10 SB: 0.2 T per switch; across a
    // fabric of many SBs it vanishes entirely
    assert!(g.overhead_per_switch(100) <= 0.2);
    assert!(g.overhead_per_switch(6400) < 0.004);
}

#[test]
fn five_valued_rail_claim() {
    // "Five-valued signals are required to make a clear distinction between
    // the 0-level of binary and that of multiple-valued."
    let gen = HybridCssGen::new(4).unwrap();
    assert_eq!(gen.radix().levels(), 5);
    for ctx in 0..4 {
        for line in gen.lines() {
            let v = gen.line_value_at(line, ctx).unwrap();
            let live = line.s0_polarity == (ctx & 1 == 1);
            // live lines never collide with the gated-off level
            assert_eq!(v.is_off(), !live);
        }
    }
}

#[test]
fn vs_encoding_claim() {
    // "The context ID CSS = {0,1,2,3} is represented by a voltage
    // Vs = {1,2,3,4}" and "¬Vs = 5 − Vs".
    for ctx in 0..4usize {
        let vs = Level::encode_ctx(ctx);
        assert_eq!(usize::from(vs.value()), ctx + 1);
        assert_eq!(vs.invert(Radix::FIVE).value(), 5 - vs.value());
    }
}
