//! Integration: the architecture beyond the paper's 4-context examples —
//! an 8-context fabric, exercising the Fig. 10 scaling (two 4-context
//! blocks, no MUX) end to end.

use mcfpga::core::ArchKind;
use mcfpga::fabric::netlist_ir::generators;
use mcfpga::fabric::route::implement_netlist_robust;
use mcfpga::fabric::sim::evaluate_sorted;
use mcfpga::prelude::*;

fn fabric8(arch: ArchKind) -> Fabric {
    Fabric::new(FabricParams {
        width: 4,
        height: 4,
        channel_width: 3,
        contexts: 8,
        arch,
        ..FabricParams::default()
    })
    .unwrap()
}

#[test]
fn eight_tenants_one_fabric() {
    // eight distinct personalities resident at once
    let mut f = fabric8(ArchKind::Hybrid);
    for ctx in 0..8 {
        let nl = if ctx % 2 == 0 {
            generators::parity_tree(4).unwrap()
        } else {
            generators::wire_lanes(2).unwrap()
        };
        implement_netlist_robust(&mut f, &nl, ctx, 100 + ctx as u64, 8).unwrap();
    }
    // spot-check behaviour in each context
    for ctx in 0..8 {
        if ctx % 2 == 0 {
            let out = evaluate_sorted(
                &f,
                ctx,
                &[("x0", true), ("x1", true), ("x2", true), ("x3", false)],
            )
            .unwrap();
            assert!(out[0].1, "parity of 3 ones in ctx {ctx}");
        } else {
            let out = evaluate_sorted(&f, ctx, &[("in0", false), ("in1", true)]).unwrap();
            assert_eq!(
                out,
                vec![("out0".to_string(), false), ("out1".to_string(), true)],
                "lanes in ctx {ctx}"
            );
        }
    }
}

#[test]
fn eight_context_switch_scaling_holds_in_fabric_rollup() {
    // Fig. 10: hybrid 8-ctx switch = 4 FGMOS; SRAM 8-ctx = 63 transistors.
    let hy = fabric8(ArchKind::Hybrid).routing_transistor_count();
    let sram = fabric8(ArchKind::Sram).routing_transistor_count();
    let mv = fabric8(ArchKind::MvFgfp).routing_transistor_count();
    assert!(hy < mv && mv < sram);
    // the per-switch ratio 4/63 dominates the fabric ratio (select nets add a bit)
    let ratio = hy as f64 / sram as f64;
    assert!(ratio > 4.0 / 63.0 && ratio < 0.12, "ratio {ratio}");
}

#[test]
fn eight_context_bitstream_roundtrip() {
    use mcfpga::fabric::bitstream::{pack, unpack};
    let mut f = fabric8(ArchKind::Hybrid);
    let nl = generators::popcount4().unwrap();
    implement_netlist_robust(&mut f, &nl, 5, 77, 8).unwrap();
    let restored = unpack(pack(&f)).unwrap();
    for x in 0..16u32 {
        let ins: Vec<(String, bool)> = (0..4)
            .map(|i| (format!("x{i}"), (x >> i) & 1 == 1))
            .collect();
        let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        assert_eq!(
            evaluate_sorted(&f, 5, &ins_ref).unwrap(),
            evaluate_sorted(&restored, 5, &ins_ref).unwrap(),
            "x={x}"
        );
    }
}

#[test]
fn deep_circuit_across_eight_contexts() {
    use mcfpga::fabric::temporal::{execute, implement, partition};
    // an 8-bit parity tree is only depth 3; use an 8-bit adder (depth 8) to
    // actually occupy 8 stages
    let nl = generators::ripple_adder(8).unwrap();
    let part = partition(&nl, 8).unwrap();
    assert_eq!(part.stages.len(), 8);
    let mut f = Fabric::new(FabricParams {
        width: 5,
        height: 5,
        channel_width: 3,
        contexts: 8,
        ..FabricParams::default()
    })
    .unwrap();
    implement(&mut f, &part, 11).unwrap();
    // sampled check against the golden model
    for (a, b) in [
        (0u32, 0u32),
        (1, 1),
        (37, 91),
        (255, 255),
        (128, 127),
        (200, 56),
    ] {
        let mut ins: Vec<(String, bool)> = Vec::new();
        for i in 0..8 {
            ins.push((format!("a{i}"), (a >> i) & 1 == 1));
            ins.push((format!("b{i}"), (b >> i) & 1 == 1));
        }
        ins.push(("cin".into(), false));
        let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let out = execute(&f, &part, &ins_ref).unwrap();
        let mut got = 0u32;
        for (name, v) in &out {
            if !*v {
                continue;
            }
            if let Some(i) = name.strip_prefix('s') {
                got |= 1 << i.parse::<u32>().unwrap();
            } else if name == "cout" {
                got |= 1 << 8;
            }
        }
        assert_eq!(got, a + b, "a={a} b={b}");
    }
}
