//! Integration: the compiled bit-parallel engine through the public facade
//! — compile → batch-evaluate → schedule-replay, cross-checked against the
//! golden netlist model and the reference fixpoint sweep.

use mcfpga::core::ArchKind;
use mcfpga::fabric::compiled::{pack_lanes, CompiledFabric, LANES};
use mcfpga::fabric::context::{replay_schedule, run_schedule, ContextSequencer};
use mcfpga::fabric::netlist_ir::generators;
use mcfpga::fabric::route::implement_netlist;
use mcfpga::fabric::sim::evaluate_fixpoint;
use mcfpga::fabric::{bitstream, stats};
use mcfpga::prelude::*;

fn fabric(w: usize, h: usize, ch: usize) -> Fabric {
    Fabric::new(FabricParams {
        width: w,
        height: h,
        channel_width: ch,
        ..FabricParams::default()
    })
    .unwrap()
}

/// Exhaustive 8-input parity: 256 vectors in four 64-lane batches, checked
/// against the netlist golden model.
#[test]
fn parity8_exhaustive_in_four_batches() {
    let nl = generators::parity_tree(8).unwrap();
    let mut f = fabric(4, 4, 3);
    implement_netlist(&mut f, &nl, 0, 11).unwrap();
    let compiled = CompiledFabric::compile(&f).unwrap();
    for batch in 0..4u64 {
        // lane l carries vector 64*batch + l
        let ins: Vec<(String, u64)> = (0..8)
            .map(|i| {
                let lanes = pack_lanes(|l| ((batch * LANES as u64 + l as u64) >> i) & 1 == 1);
                (format!("x{i}"), lanes)
            })
            .collect();
        let ins_ref: Vec<(&str, u64)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let out = compiled.eval_batch_sorted(0, &ins_ref).unwrap();
        for l in 0..LANES as u64 {
            let v = batch * LANES as u64 + l;
            let want = (0..8).filter(|i| (v >> i) & 1 == 1).count() % 2 == 1;
            assert_eq!((out[0].1 >> l) & 1 == 1, want, "vector {v}");
        }
    }
}

/// The compiled engine survives a bitstream round-trip: packing and
/// unpacking a configured fabric yields an identical compiled plane.
#[test]
fn bitstream_roundtrip_preserves_compiled_behaviour() {
    let nl = generators::ripple_adder(2).unwrap();
    let mut f = fabric(4, 4, 3);
    implement_netlist(&mut f, &nl, 1, 23).unwrap();
    let restored = bitstream::unpack(bitstream::pack(&f)).unwrap();
    let a = CompiledFabric::compile(&f).unwrap();
    let b = CompiledFabric::compile(&restored).unwrap();
    let names = ["a0", "a1", "b0", "b1", "cin"];
    let ins: Vec<(&str, u64)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (*n, 0xA5A5_5A5A_DEAD_BEEFu64.rotate_left(i as u32 * 7)))
        .collect();
    assert_eq!(
        a.eval_batch_sorted(1, &ins).unwrap(),
        b.eval_batch_sorted(1, &ins).unwrap()
    );
}

/// Driving a schedule through compiled planes matches plain replay energy
/// accounting for every architecture, and executes the right tenant.
#[test]
fn schedule_execution_matches_replay_accounting() {
    let mut f = fabric(4, 4, 3);
    implement_netlist(&mut f, &generators::parity_tree(4).unwrap(), 0, 3).unwrap();
    implement_netlist(&mut f, &generators::wire_lanes(2).unwrap(), 2, 5).unwrap();
    let compiled = CompiledFabric::compile(&f).unwrap();
    let sched = Schedule::explicit(4, vec![0, 2, 2, 0, 2]).unwrap();
    let p = TechParams::default();
    let inputs = [
        ("x0", 0b1010u64),
        ("x1", 0b1100),
        ("x2", 0),
        ("x3", 0b1111),
        ("in0", 0xF0F0),
        ("in1", 0x1234),
    ];
    for arch in ArchKind::all() {
        let mut seq = ContextSequencer::new(arch, 4).unwrap();
        let run = run_schedule(&compiled, &mut seq, &sched, &inputs, &p).unwrap();
        let plain = replay_schedule(arch, 4, &sched, &p).unwrap();
        assert_eq!(run.stats, plain, "{arch:?}");
        assert_eq!(run.steps.len(), 5);
        // step 1 runs the wire lanes of ctx 2
        let outs: &Vec<(String, u64)> = &run.steps[1].1;
        let mut sorted = outs.clone();
        sorted.sort();
        assert_eq!(sorted[0], ("out0".to_string(), 0xF0F0));
        assert_eq!(sorted[1], ("out1".to_string(), 0x1234));
        // step 0 parity agrees with the reference sweep per lane
        let parity = &run.steps[0].1[0];
        for lane in 0..4 {
            let scalar: Vec<(&str, bool)> = inputs[..4]
                .iter()
                .map(|(n, v)| (*n, (v >> lane) & 1 == 1))
                .collect();
            let (want, _) = evaluate_fixpoint(&f, 0, &scalar).unwrap();
            assert_eq!((parity.1 >> lane) & 1 == 1, want[0].1, "lane {lane}");
        }
    }
}

/// Compiled-plane stats surface the engine mode through the facade.
#[test]
fn compiled_stats_through_facade() {
    let mut f = fabric(4, 4, 3);
    implement_netlist(&mut f, &generators::parity_tree(4).unwrap(), 0, 3).unwrap();
    let compiled = CompiledFabric::compile(&f).unwrap();
    let st = stats::compiled_stats(&compiled).unwrap();
    assert_eq!(st.len(), 4);
    assert!(st[0].lut_ops == 3 && !st[0].cyclic && st[0].levels > 0);
    assert_eq!(st[3].copy_ops + st[3].lut_ops, 0);
}
