//! Integration: failure injection — the model must *detect* broken silicon,
//! not silently route around it.

use mcfpga::core::{HybridMcSwitch, McSwitch, SramMcSwitch};
use mcfpga::css::HybridCssGen;
use mcfpga::netlist::validate::check_exclusive_on;
use mcfpga::prelude::*;

#[test]
fn retention_drift_past_margin_breaks_the_literal_detectably() {
    let params = TechParams::default();
    let mut prog = Programmer::new(5, params.clone());
    let mut dev = Fgmos::new(FgmosMode::UpLiteral);
    prog.program_literal(&mut dev, Level::new(3), Radix::FIVE)
        .unwrap();
    // healthy
    assert!(!dev.conducts(Level::new(2), &params).unwrap());
    assert!(dev.conducts(Level::new(3), &params).unwrap());
    // margin shrinks monotonically under drift
    let m0 = dev.drift_margin_volts(Radix::FIVE, &params).unwrap();
    dev.drift_threshold(-0.2);
    let m1 = dev.drift_margin_volts(Radix::FIVE, &params).unwrap();
    assert!(m1 < m0);
    // drive it past the margin: level 2 now (wrongly) conducts
    dev.drift_threshold(-0.5);
    assert!(dev.conducts(Level::new(2), &params).unwrap());
}

#[test]
fn drifted_switch_violates_exclusivity_and_is_caught() {
    // Build a hybrid switch netlist, then sabotage one FGMOS threshold so
    // both polarities conduct simultaneously — the exclusive-ON checker
    // must see it.
    let params = TechParams::default();
    let gen = HybridCssGen::new(4).unwrap();
    let mut sw = HybridMcSwitch::new(4).unwrap();
    sw.configure(&CtxSet::full(4).unwrap()).unwrap();
    let mut nl = sw.build_netlist().unwrap();
    // sabotage: pull every FGMOS threshold to conduct at any live level
    let ids: Vec<_> = nl.devices().map(|(d, _, _, _)| d).collect();
    for d in ids {
        nl.fgmos_mut(d).unwrap().drift_threshold(-5.0);
    }
    let mut sim = SwitchSim::new(&nl, params);
    for line in gen.lines() {
        let name = line.name(gen.blocks());
        if nl.find_control(&name).is_some() {
            sim.bind_mv_named(&name, gen.line_value_at(line, 0).unwrap())
                .unwrap();
        }
    }
    let group: Vec<_> = nl.devices().map(|(d, _, _, _)| d).collect();
    let on = check_exclusive_on(&mut sim, &group).unwrap();
    assert!(on.len() > 1, "sabotaged switch must show the violation");
}

#[test]
fn sram_power_loss_erases_configuration_fgfp_does_not() {
    let mut sram = SramMcSwitch::new(4).unwrap();
    sram.configure(&CtxSet::full(4).unwrap()).unwrap();
    assert!(sram.is_on(0).unwrap());
    sram.power_cycle();
    assert!(sram.is_on(0).is_err(), "configuration gone");

    // hybrid switch state is floating-gate charge: no power-cycle concept
    // in the model, and its netlist carries zero SRAM cells.
    let mut hy = HybridMcSwitch::new(4).unwrap();
    hy.configure(&CtxSet::full(4).unwrap()).unwrap();
    let nl = hy.build_netlist().unwrap();
    assert_eq!(nl.sram_cell_count(), 0);
}

#[test]
fn router_contention_is_impossible_but_drivers_colliding_is_detected() {
    // Drive both ends of a closed switch with conflicting values: the
    // switch-level simulator must flag contention.
    let params = TechParams::default();
    let mut sw = HybridMcSwitch::new(4).unwrap();
    sw.configure(&CtxSet::full(4).unwrap()).unwrap();
    let nl = sw.build_netlist().unwrap();
    let gen = HybridCssGen::new(4).unwrap();
    let mut sim = SwitchSim::new(&nl, params);
    for line in gen.lines() {
        let name = line.name(gen.blocks());
        if nl.find_control(&name).is_some() {
            sim.bind_mv_named(&name, gen.line_value_at(line, 1).unwrap())
                .unwrap();
        }
    }
    let a = nl.find_net("in").unwrap();
    let b = nl.find_net("out").unwrap();
    sim.drive(a, true);
    sim.drive(b, false);
    let rep = sim.evaluate().unwrap();
    assert_eq!(rep.contentions.len(), 1);
}

#[test]
fn bad_routes_rejected_before_touching_silicon() {
    let mut rs = RouteSet::empty(3, 3, 2).unwrap();
    rs.connect(0, 1, 0).unwrap();
    // same row twice in one context → rejected at the routing layer
    assert!(rs.connect(0, 1, 2).is_err());
    // domain mismatch → rejected at the block layer
    let mut sb = SwitchBlock::new(ArchKind::Hybrid, 3, 3, 4).unwrap();
    assert!(sb.configure(&rs).is_err());
}

#[test]
fn programming_with_tiny_endurance_budget_fails_cleanly() {
    let params = TechParams {
        endurance_pulses: 1,
        ..TechParams::default()
    };
    let mut prog = Programmer::new(3, params);
    let mut dev = Fgmos::new(FgmosMode::DownLiteral);
    let err = prog.program_literal(&mut dev, Level::new(1), Radix::FIVE);
    assert!(err.is_err());
}

use mcfpga::core::ArchKind;
