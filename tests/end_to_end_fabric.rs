//! Integration: complete fabric flows — netlist → temporal partition →
//! place → route → bitstream → simulate — checked against golden models.

use mcfpga::fabric::netlist_ir::generators;
use mcfpga::fabric::route::implement_netlist;
use mcfpga::fabric::sim::evaluate_sorted;
use mcfpga::fabric::temporal::{execute, implement, partition};
use mcfpga::fabric::{bitstream, power};
use mcfpga::prelude::*;

fn fabric(w: usize, h: usize, ch: usize) -> Fabric {
    Fabric::new(FabricParams {
        width: w,
        height: h,
        channel_width: ch,
        ..FabricParams::default()
    })
    .unwrap()
}

#[test]
fn parity8_single_context_exhaustive() {
    let nl = generators::parity_tree(8).unwrap();
    let mut f = fabric(4, 4, 3);
    implement_netlist(&mut f, &nl, 0, 11).unwrap();
    for x in 0..256u32 {
        let ins: Vec<(String, bool)> = (0..8)
            .map(|i| (format!("x{i}"), (x >> i) & 1 == 1))
            .collect();
        let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let out = evaluate_sorted(&f, 0, &ins_ref).unwrap();
        assert_eq!(out[0].1, x.count_ones() % 2 == 1, "x={x}");
    }
}

#[test]
fn mux_tree_single_context_exhaustive() {
    let nl = generators::mux_tree(2).unwrap();
    let mut f = fabric(4, 4, 3);
    implement_netlist(&mut f, &nl, 3, 21).unwrap();
    for sel in 0..4usize {
        for data in 0..16usize {
            let mut ins: Vec<(String, bool)> = (0..4)
                .map(|i| (format!("d{i}"), (data >> i) & 1 == 1))
                .collect();
            ins.push(("sel0".into(), sel & 1 == 1));
            ins.push(("sel1".into(), sel & 2 == 2));
            let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let out = evaluate_sorted(&f, 3, &ins_ref).unwrap();
            assert_eq!(out[0].1, (data >> sel) & 1 == 1, "sel={sel} data={data}");
        }
    }
}

#[test]
fn temporally_partitioned_adder4_exhaustive() {
    let nl = generators::ripple_adder(4).unwrap();
    let part = partition(&nl, 4).unwrap();
    let mut f = fabric(5, 5, 3);
    implement(&mut f, &part, 31).unwrap();
    for a in 0..16u32 {
        for b in 0..16u32 {
            let mut ins: Vec<(String, bool)> = Vec::new();
            for i in 0..4 {
                ins.push((format!("a{i}"), (a >> i) & 1 == 1));
                ins.push((format!("b{i}"), (b >> i) & 1 == 1));
            }
            ins.push(("cin".into(), false));
            let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let out = execute(&f, &part, &ins_ref).unwrap();
            let mut got = 0u32;
            for (name, v) in &out {
                if !*v {
                    continue;
                }
                if let Some(i) = name.strip_prefix('s') {
                    got |= 1 << i.parse::<u32>().unwrap();
                } else if name == "cout" {
                    got |= 1 << 4;
                }
            }
            assert_eq!(got, a + b, "a={a} b={b}");
        }
    }
}

#[test]
fn two_workloads_share_one_fabric_across_contexts() {
    // parity in ctx 0, 2-bit adder spread over ctx 1..3 is too entangled;
    // instead: parity ctx 0, mux ctx 1, lanes ctx 2 — all independent.
    let mut f = fabric(5, 5, 3);
    let parity = generators::parity_tree(4).unwrap();
    let mux = generators::mux_tree(2).unwrap();
    let lanes = generators::wire_lanes(2).unwrap();
    implement_netlist(&mut f, &parity, 0, 1).unwrap();
    implement_netlist(&mut f, &mux, 1, 2).unwrap();
    implement_netlist(&mut f, &lanes, 2, 3).unwrap();

    let out = evaluate_sorted(
        &f,
        0,
        &[("x0", true), ("x1", false), ("x2", true), ("x3", true)],
    )
    .unwrap();
    assert!(out[0].1, "parity of three ones");

    let out = evaluate_sorted(
        &f,
        1,
        &[
            ("d0", false),
            ("d1", true),
            ("d2", false),
            ("d3", false),
            ("sel0", true),
            ("sel1", false),
        ],
    )
    .unwrap();
    assert!(out[0].1, "mux selects d1");

    let out = evaluate_sorted(&f, 2, &[("in0", true), ("in1", false)]).unwrap();
    assert_eq!(
        out,
        vec![("out0".to_string(), true), ("out1".to_string(), false)]
    );
}

#[test]
fn bitstream_roundtrip_preserves_all_contexts() {
    let mut f = fabric(4, 4, 3);
    let parity = generators::parity_tree(4).unwrap();
    let lanes = generators::wire_lanes(2).unwrap();
    implement_netlist(&mut f, &parity, 0, 4).unwrap();
    implement_netlist(&mut f, &lanes, 2, 5).unwrap();
    let restored = bitstream::unpack(bitstream::pack(&f)).unwrap();
    for x in 0..16u32 {
        let ins: Vec<(String, bool)> = (0..4)
            .map(|i| (format!("x{i}"), (x >> i) & 1 == 1))
            .collect();
        let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        assert_eq!(
            evaluate_sorted(&f, 0, &ins_ref).unwrap(),
            evaluate_sorted(&restored, 0, &ins_ref).unwrap()
        );
    }
    let ins = [("in0", true), ("in1", true)];
    assert_eq!(
        evaluate_sorted(&f, 2, &ins).unwrap(),
        evaluate_sorted(&restored, 2, &ins).unwrap()
    );
}

#[test]
fn fabric_power_story_holds_at_scale() {
    let p = TechParams::default();
    let mk = |arch| {
        Fabric::new(FabricParams {
            width: 6,
            height: 6,
            arch,
            ..FabricParams::default()
        })
        .unwrap()
    };
    let sram = power::routing_power(&mk(ArchKind::Sram), &p);
    let hybrid = power::routing_power(&mk(ArchKind::Hybrid), &p);
    assert_eq!(sram.crosspoints, hybrid.crosspoints);
    assert!(hybrid.routing_transistors * 8 < sram.routing_transistors);
    assert_eq!(hybrid.volatile_bits, 0);
    assert!(sram.volatile_bits > 10_000);
}

use mcfpga::core::ArchKind;
