//! Cross-crate property tests: random configurations, routes and schedules
//! must uphold the architecture's invariants end to end.

use mcfpga::core::equivalence::{build_all, check_config};
use mcfpga::core::{HybridMcSwitch, McSwitch, MvFgfpMcSwitch};
use mcfpga::prelude::*;
use mcfpga::switchblock::mapping::{
    column_row_usage, remap_preserves_column_connectivity, select_networks_needed,
};
use proptest::prelude::*;

fn arb_ctxset(contexts: usize) -> impl Strategy<Value = CtxSet> {
    let dom = if contexts == 64 {
        u64::MAX
    } else {
        (1u64 << contexts) - 1
    };
    prop::bits::u64::masked(dom).prop_map(move |m| CtxSet::from_mask(contexts, m).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn three_architectures_agree_on_random_8ctx_configs(s in arb_ctxset(8)) {
        let mut switches = build_all(8).unwrap();
        prop_assert!(check_config(&mut switches, &s).unwrap().is_empty());
    }

    #[test]
    fn hybrid_exclusive_on_for_random_16ctx_configs(s in arb_ctxset(16)) {
        let mut sw = HybridMcSwitch::new(16).unwrap();
        sw.configure(&s).unwrap();
        for ctx in 0..16 {
            let on = sw.on_fgmos_count(ctx).unwrap();
            prop_assert!(on <= 1);
            prop_assert_eq!(on == 1, s.get(ctx));
        }
    }

    #[test]
    fn mv_switch_branch_count_equals_run_count(s in arb_ctxset(4)) {
        let mut sw = MvFgfpMcSwitch::new(4).unwrap();
        sw.configure(&s).unwrap();
        prop_assert_eq!(sw.branches_used(), s.run_count());
    }

    #[test]
    fn remap_always_reaches_n_select_networks(
        seed in 0u64..1000,
        k in 2usize..16,
        contexts in 1usize..8,
    ) {
        let routes = RouteSet::random_permutations(k, contexts, seed).unwrap();
        let out = remap_to_designated_rows(&routes).unwrap();
        prop_assert!(remap_preserves_column_connectivity(&routes, &out));
        let (_, total) = select_networks_needed(&out.routes);
        prop_assert_eq!(total, k);
        for rows in column_row_usage(&out.routes) {
            prop_assert!(rows.len() <= 1);
        }
    }

    #[test]
    fn switch_block_silicon_matches_routes(
        seed in 0u64..500,
        fill in 0.1f64..1.0,
    ) {
        let routes = RouteSet::random_partial(6, 6, 4, fill, seed).unwrap();
        let mut sb = SwitchBlock::new(ArchKind::Hybrid, 6, 6, 4).unwrap();
        sb.configure(&routes).unwrap();
        sb.verify_against_routes().unwrap();
    }

    #[test]
    fn css_toggles_are_symmetric_and_zero_on_identity(
        a in 0usize..16,
        b in 0usize..16,
    ) {
        let gen = HybridCssGen::new(16).unwrap();
        prop_assert_eq!(gen.toggles_between(a, a).unwrap(), 0);
        prop_assert_eq!(
            gen.toggles_between(a, b).unwrap(),
            gen.toggles_between(b, a).unwrap()
        );
    }

    #[test]
    fn programming_random_literals_converges(
        seed in 0u64..500,
        t in 0u8..5,
        up in any::<bool>(),
    ) {
        let params = TechParams::default();
        let mut prog = Programmer::new(seed, params.clone());
        let mode = if up { FgmosMode::UpLiteral } else { FgmosMode::DownLiteral };
        let mut dev = Fgmos::new(mode);
        prog.program_literal(&mut dev, Level::new(t), Radix::FIVE).unwrap();
        for v in 0..5u8 {
            let want = if up { v >= t } else { v <= t };
            prop_assert_eq!(dev.conducts(Level::new(v), &params).unwrap(), want);
        }
    }

    #[test]
    fn bitstream_roundtrip_random_fabric_configs(seed in 0u64..100) {
        use mcfpga::fabric::netlist_ir::generators;
        use mcfpga::fabric::route::implement_netlist;
        use mcfpga::fabric::bitstream::{pack, unpack};
        let nl = generators::parity_tree(4).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, (seed % 4) as usize, seed).unwrap();
        let restored = unpack(pack(&f)).unwrap();
        prop_assert_eq!(f.crosspoint_count(), restored.crosspoint_count());
        // spot check behaviour
        let ins = [("x0", true), ("x1", false), ("x2", true), ("x3", false)];
        let ctx = (seed % 4) as usize;
        prop_assert_eq!(
            mcfpga::fabric::sim::evaluate_sorted(&f, ctx, &ins).unwrap(),
            mcfpga::fabric::sim::evaluate_sorted(&restored, ctx, &ins).unwrap()
        );
    }
}

use mcfpga::core::ArchKind;
