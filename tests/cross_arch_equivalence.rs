//! Integration: the three MC-switch architectures are functionally
//! interchangeable — behaviourally (model level) and electrically (netlist
//! switch-level simulation).

use mcfpga::core::equivalence::{build_all, check_config, check_exhaustive};
use mcfpga::core::{ArchKind, HybridMcSwitch, McSwitch, MvFgfpMcSwitch};
use mcfpga::css::HybridCssGen;
use mcfpga::prelude::*;

#[test]
fn exhaustive_equivalence_4_8_contexts() {
    assert_eq!(check_exhaustive(4).unwrap(), 16);
    assert_eq!(check_exhaustive(8).unwrap(), 256);
}

#[test]
fn exhaustive_equivalence_16_contexts() {
    assert_eq!(check_exhaustive(16).unwrap(), 65_536);
}

#[test]
fn sampled_equivalence_64_contexts() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    // SRAM needs power-of-two contexts; 64 works for all three.
    let mut switches = build_all(64).unwrap();
    for _ in 0..200 {
        let mask: u64 = rng.random_range(0..u64::MAX);
        let s = CtxSet::from_mask(64, mask).unwrap();
        let mismatches = check_config(&mut switches, &s).unwrap();
        assert!(mismatches.is_empty(), "disagreement on {s}");
    }
}

#[test]
fn hybrid_netlist_equals_model_for_every_4ctx_config() {
    // electrical-level cross-check: the structural netlist simulated at
    // switch level reproduces the behavioural model for all 16 functions.
    let params = TechParams::default();
    let gen = HybridCssGen::new(4).unwrap();
    let mut sw = HybridMcSwitch::new(4).unwrap();
    for s in CtxSet::enumerate_all(4).unwrap() {
        sw.configure(&s).unwrap();
        let nl = sw.build_netlist().unwrap();
        let mut sim = SwitchSim::new(&nl, params.clone());
        let a = nl.find_net("in").unwrap();
        let b = nl.find_net("out").unwrap();
        for ctx in 0..4 {
            for line in gen.lines() {
                let name = line.name(gen.blocks());
                if nl.find_control(&name).is_some() {
                    sim.bind_mv_named(&name, gen.line_value_at(line, ctx).unwrap())
                        .unwrap();
                }
            }
            sim.evaluate().unwrap();
            assert_eq!(sim.connected(a, b), s.get(ctx), "config {s} ctx {ctx}");
        }
    }
}

#[test]
fn mv_netlist_equals_model_for_every_4ctx_config() {
    let params = TechParams::default();
    let mut sw = MvFgfpMcSwitch::new(4).unwrap();
    for s in CtxSet::enumerate_all(4).unwrap() {
        sw.configure(&s).unwrap();
        let nl = sw.build_netlist().unwrap();
        let mut sim = SwitchSim::new(&nl, params.clone());
        let a = nl.find_net("in").unwrap();
        let b = nl.find_net("out").unwrap();
        for ctx in 0..4 {
            sim.bind_mv_named("MvRail", Level::new(ctx as u8)).unwrap();
            sim.evaluate().unwrap();
            assert_eq!(sim.connected(a, b), s.get(ctx), "config {s} ctx {ctx}");
        }
    }
}

#[test]
fn switch_blocks_of_all_archs_route_identically() {
    let routes = RouteSet::random_permutations(6, 4, 5).unwrap();
    let mut blocks: Vec<SwitchBlock> = ArchKind::all()
        .into_iter()
        .map(|arch| SwitchBlock::new(arch, 6, 6, 4).unwrap())
        .collect();
    for sb in &mut blocks {
        sb.configure(&routes).unwrap();
    }
    for ctx in 0..4 {
        for row in 0..6 {
            for col in 0..6 {
                let states: Vec<bool> = blocks
                    .iter()
                    .map(|sb| sb.is_on(ctx, row, col).unwrap())
                    .collect();
                assert!(
                    states.iter().all(|&s| s == states[0]),
                    "ctx {ctx} ({row},{col}): {states:?}"
                );
            }
        }
    }
}
