//! Integration: the `repro` report is deterministic and carries the paper's
//! numbers — a snapshot-style guard so documentation and code cannot drift
//! apart silently.

#[test]
fn full_report_is_deterministic() {
    let a = mcfpga_bench::full_report();
    let b = mcfpga_bench::full_report();
    assert_eq!(a, b);
}

#[test]
fn report_carries_every_headline_number() {
    let r = mcfpga_bench::full_report();
    for needle in [
        // Table 1
        "| SRAM-based one | 31 | 31 | 100% |",
        "| Only MV-FGFP-based one [2] | 4 | 4 | 13% |",
        "| Proposed one | 2 | 2 | 6% |",
        // Table 2
        "| SRAM-based one | 3100 | 3100 | 100% |",
        "| Proposed one | 240 | 240 | 8% |",
        // Fig. 3 decomposition
        "window [1,1]",
        "window [3,3]",
        // Fig. 7 line names
        "S0·Vs",
        "¬S0·¬Vs",
        // Fig. 9/10 scaling
        "64 contexts: 32 FGMOS, 0 MUXes",
        // Fig. 11 claim
        "(= N, the paper's claim)",
        // scaling CSV rows
        "4,31,4,2",
        "64,511,94,32",
        "10,3100,400,240",
        // redundancy + equivalence
        "max 1 (exclusive-ON)",
        "256 configurations checked exhaustively",
    ] {
        assert!(r.contains(needle), "report missing: {needle}");
    }
}

#[test]
fn experiment_list_covers_all_artifacts() {
    for id in [
        "table1",
        "table2",
        "fig3",
        "fig7",
        "fig11",
        "scaling",
        "redundancy",
        "power",
    ] {
        assert!(
            mcfpga_bench::EXPERIMENTS.contains(&id),
            "missing experiment id {id}"
        );
    }
}
