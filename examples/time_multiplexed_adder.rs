//! Time-multiplexed execution on the multi-context fabric (the Trimberger
//! use case the paper's introduction assumes).
//!
//! A 4-bit ripple-carry adder is temporally partitioned into four stages,
//! each mapped into its own context of one small fabric; executing a "user
//! cycle" runs the contexts back to back, carrying values through the
//! context register file. The result is checked against the netlist golden
//! model, and the configuration is round-tripped through the bitstream.
//!
//! ```text
//! cargo run --example time_multiplexed_adder
//! ```

use mcfpga::fabric::netlist_ir::generators;
use mcfpga::fabric::temporal::{execute, implement, partition};
use mcfpga::fabric::{bitstream, context};
use mcfpga::prelude::*;

fn main() {
    const WIDTH: usize = 4;
    let nl = generators::ripple_adder(WIDTH).expect("adder netlist");
    println!(
        "netlist: {} LUTs, depth {} — partitioning into 4 contexts\n",
        nl.lut_count(),
        nl.depth()
    );

    let part = partition(&nl, 4).expect("temporal partition");
    for (s, stage) in part.stages.iter().enumerate() {
        println!(
            "stage {s}: {} LUTs, {} outputs ({} register writes)",
            stage.lut_count(),
            stage.outputs().len(),
            stage
                .outputs()
                .iter()
                .filter(|(n, _)| n.starts_with("reg:"))
                .count()
        );
    }

    let mut fabric = Fabric::new(FabricParams {
        width: 5,
        height: 5,
        channel_width: 3,
        ..FabricParams::default()
    })
    .expect("fabric");
    let designs = implement(&mut fabric, &part, 2024).expect("map all stages");
    let wl: usize = designs.iter().map(|d| d.wirelength).sum();
    println!("\nmapped {} stages, total wirelength {wl} hops", designs.len());

    // Exhaustive check against the golden model.
    let mut checked = 0;
    for a in 0..(1u32 << WIDTH) {
        for b in 0..(1u32 << WIDTH) {
            let mut ins: Vec<(String, bool)> = Vec::new();
            for i in 0..WIDTH {
                ins.push((format!("a{i}"), (a >> i) & 1 == 1));
                ins.push((format!("b{i}"), (b >> i) & 1 == 1));
            }
            ins.push(("cin".into(), false));
            let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let out = execute(&fabric, &part, &ins_ref).expect("execute");
            let mut got = 0u32;
            for (name, v) in &out {
                if !*v {
                    continue;
                }
                if let Some(i) = name.strip_prefix('s') {
                    got |= 1 << i.parse::<u32>().expect("sum index");
                } else if name == "cout" {
                    got |= 1 << WIDTH;
                }
            }
            assert_eq!(got, a + b, "a={a} b={b}");
            checked += 1;
        }
    }
    println!("exhaustively verified {checked} input pairs against the golden model");

    // Bitstream round-trip.
    let bits = bitstream::pack(&fabric);
    println!("\nbitstream: {} bytes for all 4 configuration planes", bits.len());
    let restored = bitstream::unpack(bits).expect("unpack");
    let out = execute(&restored, &part, &[("a0", true), ("a1", false), ("a2", false), ("a3", false), ("b0", true), ("b1", false), ("b2", false), ("b3", false), ("cin", false)])
        .expect("execute restored");
    println!("restored fabric computes 1+1: {out:?}");

    // Context-switch energy for one user cycle per architecture.
    let sched = Schedule::round_robin(4, 1).expect("schedule");
    let p = TechParams::default();
    println!("\ncontext-switch cost of one user cycle:");
    for arch in ArchKind::all() {
        let stats = context::replay_schedule(arch, 4, &sched, &p).expect("replay");
        println!(
            "  {:<28} {:>3} wire toggles, {:.2e} J",
            arch.label(),
            stats.wire_toggles,
            stats.dynamic_energy_j
        );
    }
}
