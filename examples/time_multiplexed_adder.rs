//! Time-multiplexed execution on the multi-context fabric (the Trimberger
//! use case the paper's introduction assumes).
//!
//! A 4-bit ripple-carry adder is temporally partitioned into four stages,
//! each mapped into its own context of one small fabric; executing a "user
//! cycle" runs the contexts back to back, carrying values through the
//! context register file. The result is checked against the netlist golden
//! model, and the configuration is round-tripped through the bitstream.
//!
//! ```text
//! cargo run --example time_multiplexed_adder
//! ```

use mcfpga::fabric::compiled::{pack_lanes, CompiledFabric, LANES};
use mcfpga::fabric::netlist_ir::generators;
use mcfpga::fabric::temporal::{execute, execute_compiled, implement, partition};
use mcfpga::fabric::{bitstream, context};
use mcfpga::prelude::*;

fn main() {
    const WIDTH: usize = 4;
    let nl = generators::ripple_adder(WIDTH).expect("adder netlist");
    println!(
        "netlist: {} LUTs, depth {} — partitioning into 4 contexts\n",
        nl.lut_count(),
        nl.depth()
    );

    let part = partition(&nl, 4).expect("temporal partition");
    for (s, stage) in part.stages.iter().enumerate() {
        println!(
            "stage {s}: {} LUTs, {} outputs ({} register writes)",
            stage.lut_count(),
            stage.outputs().len(),
            stage
                .outputs()
                .iter()
                .filter(|(n, _)| n.starts_with("reg:"))
                .count()
        );
    }

    let mut fabric = Fabric::new(FabricParams {
        width: 5,
        height: 5,
        channel_width: 3,
        ..FabricParams::default()
    })
    .expect("fabric");
    let designs = implement(&mut fabric, &part, 2024).expect("map all stages");
    let wl: usize = designs.iter().map(|d| d.wirelength).sum();
    println!(
        "\nmapped {} stages, total wirelength {wl} hops",
        designs.len()
    );

    // Exhaustive check against the golden model: compile once, then run
    // all 256 (a, b) pairs as four 64-lane batches — lane l of batch k is
    // the pair with index 64k + l (a = low nibble, b = high nibble).
    let compiled = CompiledFabric::compile(&fabric).expect("compile");
    let mut checked = 0;
    for batch in 0..4u64 {
        let mut ins: Vec<(String, u64)> = Vec::new();
        for i in 0..WIDTH {
            let idx = |lane: usize| batch * LANES as u64 + lane as u64;
            ins.push((
                format!("a{i}"),
                pack_lanes(|lane| ((idx(lane) & 0xF) >> i) & 1 == 1),
            ));
            ins.push((
                format!("b{i}"),
                pack_lanes(|lane| ((idx(lane) >> 4) >> i) & 1 == 1),
            ));
        }
        ins.push(("cin".into(), 0));
        let ins_ref: Vec<(&str, u64)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let out = execute_compiled(&compiled, &part, &ins_ref).expect("execute");
        for lane in 0..LANES as u64 {
            let idx = batch * LANES as u64 + lane;
            let (a, b) = ((idx & 0xF) as u32, (idx >> 4) as u32);
            let mut got = 0u32;
            for (name, v) in &out {
                if (v >> lane) & 1 == 0 {
                    continue;
                }
                if let Some(i) = name.strip_prefix('s') {
                    got |= 1 << i.parse::<u32>().expect("sum index");
                } else if name == "cout" {
                    got |= 1 << WIDTH;
                }
            }
            assert_eq!(got, a + b, "a={a} b={b}");
            checked += 1;
        }
    }
    println!(
        "exhaustively verified {checked} input pairs against the golden model \
         (4 bit-parallel batches)"
    );

    // Bitstream round-trip.
    let bits = bitstream::pack(&fabric);
    println!(
        "\nbitstream: {} bytes for all 4 configuration planes",
        bits.len()
    );
    let restored = bitstream::unpack(bits).expect("unpack");
    let out = execute(
        &restored,
        &part,
        &[
            ("a0", true),
            ("a1", false),
            ("a2", false),
            ("a3", false),
            ("b0", true),
            ("b1", false),
            ("b2", false),
            ("b3", false),
            ("cin", false),
        ],
    )
    .expect("execute restored");
    println!("restored fabric computes 1+1: {out:?}");

    // Context-switch energy per architecture: build each CSS generator
    // once, then replay any number of user cycles through it for free.
    let p = TechParams::default();
    println!("\ncontext-switch cost of one user cycle (and 1000 cycles):");
    for arch in ArchKind::all() {
        let mut seq = context::ContextSequencer::new(arch, 4).expect("sequencer");
        let one = seq
            .replay(&Schedule::round_robin(4, 1).expect("schedule"), &p)
            .expect("replay");
        let thousand = seq
            .replay(&Schedule::round_robin(4, 1000).expect("schedule"), &p)
            .expect("replay");
        println!(
            "  {:<28} {:>3} wire toggles, {:.2e} J  ({:>5} toggles, {:.2e} J over 1000)",
            arch.label(),
            one.wire_toggles,
            one.dynamic_energy_j,
            thousand.wire_toggles,
            thousand.dynamic_energy_j
        );
    }
}
