//! The Fig. 11 / Table 2 scenario: a 10×10 multi-context switch block
//! routing four contexts of permutation traffic.
//!
//! Demonstrates the paper's column-sharing argument end to end: random
//! per-context routes need many select networks if rows are fixed, but the
//! crossbar's input flexibility lets every column collapse onto one
//! designated row — N control signals for an N×N block.
//!
//! ```text
//! cargo run --example crossbar_switchblock
//! ```

use mcfpga::prelude::*;
use mcfpga::switchblock::column::SharedColumn;
use mcfpga::switchblock::mapping::select_networks_needed;
use mcfpga::switchblock::sb_transistors;

fn main() {
    const K: usize = 10;
    const CONTEXTS: usize = 4;

    // Four contexts of random full-permutation traffic.
    let routes = RouteSet::random_permutations(K, CONTEXTS, 42).expect("routes");
    println!(
        "random permutation routes: {} routed (ctx, col) pairs over {CONTEXTS} contexts\n",
        routes.routed_count()
    );

    // With rows physically fixed, how much select hardware would we need?
    let (_, fixed) = select_networks_needed(&routes);
    println!("select networks if rows are fixed : {fixed}");

    // The paper's observation: remap every column onto a designated row.
    let remapped = remap_to_designated_rows(&routes).expect("remap");
    let (_, shared) = select_networks_needed(&remapped.routes);
    println!("after designated-row remapping    : {shared}  (= N — the Fig. 11 claim)\n");

    // Configure a real switch block with the remapped routes and verify the
    // silicon agrees with the route table, context by context.
    let mut sb = SwitchBlock::new(ArchKind::Hybrid, K, K, CONTEXTS).expect("block");
    sb.configure(&remapped.routes).expect("configure");
    sb.verify_against_routes().expect("verify");
    println!("hybrid {K}×{K} block configured and verified against routes");

    // Table 2, live.
    println!("\ntransistors per {K}×{K} MC-SB (Table 2):");
    for arch in ArchKind::all() {
        println!(
            "  {:<28} {:>5}",
            arch.label(),
            sb_transistors(arch, K, CONTEXTS)
        );
    }

    // One shared-select column, simulated at switch level.
    let on = CtxSet::from_ctxs(CONTEXTS, [0, 3]).expect("function");
    let col = SharedColumn::build(K, 4, &on).expect("column");
    let per_ctx = col.simulate().expect("simulate");
    println!("\nshared-select column, designated row 4, function {on}:");
    for (ctx, row) in per_ctx.iter().enumerate() {
        match row {
            Some(r) => println!("  ctx {ctx}: column driven by row {r}"),
            None => println!("  ctx {ctx}: column floats (switch off)"),
        }
    }
}
