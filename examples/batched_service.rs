//! Batched multi-tenant service: many tenants, one fabric pool, full lanes.
//!
//! Eight tenants admit designs into a 2-shard pool of 8×8, 4-context
//! fabrics (round-robin: tenant 0 → shard 0, tenant 1 → shard 1, …). Their
//! single-vector requests coalesce into 64-lane bit-parallel passes per
//! `(shard, context)` slot; identical designs share one compiled plane
//! through the digest cache; and each drain sweeps only the contexts with
//! pending work, charging CSS broadcast energy to the tenant switched in.
//!
//! ```text
//! cargo run --example batched_service
//! ```

use mcfpga::fabric::netlist_ir::generators;
use mcfpga::prelude::*;

fn main() {
    let params = FabricParams {
        width: 8,
        height: 8,
        channel_width: 4,
        ..FabricParams::default()
    };
    let mut svc = ShardedService::new(2, params, TechParams::default()).expect("service");

    // Eight tenants over 2 shards × 4 contexts. Round-robin admission puts
    // consecutive tenants on the same context slot of sibling shards, so
    // the adjacent identical designs (parity-a/b, wire-a/b) route to equal
    // configuration digests — their second admission hits the plane cache.
    let designs = [
        ("parity-a", generators::parity_tree(8).expect("netlist")),
        ("parity-b", generators::parity_tree(8).expect("netlist")),
        ("adder", generators::ripple_adder(3).expect("netlist")),
        (
            "compare",
            generators::equality_comparator(3).expect("netlist"),
        ),
        ("mux", generators::mux_tree(2).expect("netlist")),
        ("popcount", generators::popcount4().expect("netlist")),
        ("wire-a", generators::wire_lanes(2).expect("netlist")),
        ("wire-b", generators::wire_lanes(2).expect("netlist")),
    ];
    let mut tenants = Vec::new();
    for (name, nl) in &designs {
        let id = svc.admit(name, nl).expect("admit");
        let rec = svc.registry().tenant(id).expect("record");
        println!(
            "admitted {name:<10} → shard {} ctx {} (digest {:#018x})",
            rec.placement.shard, rec.placement.ctx, rec.digest
        );
        tenants.push((id, nl));
    }
    println!(
        "plane cache: {} compiles, {} hits for {} tenants\n",
        svc.cache().misses(),
        svc.cache().hits(),
        tenants.len()
    );

    // A burst of traffic: every tenant submits 100 single-vector requests.
    for k in 0..100u64 {
        for (id, nl) in &tenants {
            let inputs: Vec<(String, bool)> = nl
                .input_ids()
                .iter()
                .enumerate()
                .map(|(i, node)| match nl.node(*node) {
                    mcfpga::fabric::netlist_ir::Node::Input { name } => {
                        (name.clone(), (k >> (i % 6)) & 1 == 1)
                    }
                    _ => unreachable!(),
                })
                .collect();
            let refs: Vec<(&str, bool)> = inputs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            svc.submit(*id, &refs).expect("submit");
        }
    }
    let responses = svc.drain().expect("drain");
    println!(
        "served {} requests in {} fabric passes total",
        responses.len(),
        tenants
            .iter()
            .map(|(id, _)| svc.usage(*id).expect("usage").passes)
            .sum::<usize>(),
    );

    // The bill: who used the fabric, how full their lanes ran, and what
    // their context switches cost on the CSS broadcast network.
    println!("\n{}", svc.billing_report());
}
