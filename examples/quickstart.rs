//! Quickstart: the paper's story in sixty lines.
//!
//! Build all three multi-context switch architectures, program them with the
//! Fig. 3 example function (conduct in contexts 1 and 3), sweep the context
//! switching signal, and compare transistor budgets.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mcfpga::prelude::*;

fn main() {
    // The switch function F of the paper's Fig. 3: ON for CSS ∈ {1, 3}.
    let f = CtxSet::from_ctxs(4, [1, 3]).expect("4-context function");
    println!("function F = {f}  (ON-set over 4 contexts)\n");

    // Its window decomposition — what the MV-FGFP switch must realise.
    let windows = decompose_windows(&f);
    println!(
        "window decomposition: {}",
        windows
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" OR ")
    );
    println!();

    // All three architectures, configured identically.
    let mut switches: Vec<AnySwitch> = ArchKind::all()
        .into_iter()
        .map(|arch| AnySwitch::build(arch, 4).expect("4-context switch"))
        .collect();
    for sw in &mut switches {
        sw.configure(&f).expect("configure");
    }

    // Sweep the broadcast context and watch each switch respond.
    println!(
        "ctx | {:>10} | {:>10} | {:>10}",
        "SRAM", "MV-FGFP", "hybrid"
    );
    for ctx in 0..4 {
        let states: Vec<&str> = switches
            .iter()
            .map(|sw| {
                if sw.is_on(ctx).expect("query") {
                    "ON"
                } else {
                    "off"
                }
            })
            .collect();
        println!(
            "{ctx:>3} | {:>10} | {:>10} | {:>10}",
            states[0], states[1], states[2]
        );
    }
    println!();

    // The headline numbers (Table 1).
    println!("transistors per switch (Table 1):");
    for sw in &switches {
        println!("  {:<28} {:>3}", sw.arch().label(), sw.transistor_count());
    }
    println!();

    // The hybrid switch is exclusively ON: at most one FGMOS conducts, ever.
    let mut hybrid = HybridMcSwitch::new(4).expect("hybrid");
    hybrid.configure(&f).expect("configure");
    for ctx in 0..4 {
        println!(
            "ctx {ctx}: hybrid has {} FGMOS conducting",
            hybrid.on_fgmos_count(ctx).expect("count")
        );
    }
}
