//! Observability tour: the metric registry, request-lifecycle tracing,
//! and fleet health snapshots — all deterministic, all offline.
//!
//! A two-node cluster admits a tenant, serves a request locally, then
//! live-migrates the tenant mid-queue so a second request crosses nodes.
//! Afterwards we read back everything the telemetry subsystem captured:
//!
//! * the **Prometheus text page** and **deterministic JSON snapshot** of
//!   a node's registry (the same snapshot the benches stamp into their
//!   `BENCH_*.json` artifacts);
//! * the **cross-node trace** of the migrated request — admission on
//!   node 0, a `MigrationHop`, then plan/eval/apply/demux on node 1,
//!   every span stamped with the virtual clock;
//! * the **cluster health snapshot** the rebalancer classifies from — a
//!   pure function of the published gauges.
//!
//! ```text
//! cargo run --example observability
//! ```

use mcfpga::fabric::netlist_ir::generators;
use mcfpga::prelude::*;

fn main() {
    let node = |shards| {
        ShardedService::new(shards, FabricParams::default(), TechParams::default())
            .expect("service")
    };
    let mut cluster = Cluster::new(vec![node(2), node(2)]).expect("cluster");

    // Admit a tenant (lands on node 0) and serve one request locally.
    let parity = cluster
        .admit("parity", &generators::parity_tree(3).expect("netlist"))
        .expect("admit");
    let home = cluster.tenant_node(parity).expect("home");
    cluster
        .submit(parity, &[("x0", true), ("x1", true), ("x2", false)])
        .expect("submit");
    cluster.drain().expect("drain");

    // Second request: admitted at cycle 5, migrated at 7, drained at 9.
    cluster.advance(5);
    let traveller = cluster
        .submit(parity, &[("x0", true), ("x1", false), ("x2", false)])
        .expect("submit");
    cluster.advance(2);
    cluster.migrate_tenant(parity, 1 - home).expect("migrate");
    cluster.advance(2);
    let responses = cluster.drain().expect("drain");
    assert!(responses[0].outputs[0].1, "parity(1,0,0) = 1");

    // 1. The metric registry, two renderings of the same cells: the
    //    Prometheus text page, and the deterministic-class JSON snapshot
    //    (bit-identical at any MCFPGA_THREADS x lane width).
    let registry = cluster.node(home).expect("node").telemetry().registry();
    println!("=== node {home} Prometheus page ===");
    print!("{}", registry.render_prometheus());
    println!("\n=== node {home} deterministic snapshot ===");
    println!("{}", registry.deterministic_json());

    // 2. The request-lifecycle trace, stitched across both nodes.
    println!("\n=== trace({traveller}) ===");
    for span in cluster.trace(traveller) {
        println!("  {span}");
    }
    let timeline = cluster.trace(traveller);
    assert!(
        timeline.iter().any(|s| s.kind == SpanKind::MigrationHop),
        "the migrated request's timeline records its hop"
    );
    assert_eq!(timeline.first().expect("admitted").node, home as u32);
    assert_eq!(
        timeline.last().expect("demuxed").node,
        (1 - home) as u32,
        "served from the destination node"
    );

    // 3. The fleet health snapshot the rebalancer consumes: queue depth,
    //    fault tally and resident tenants per node, read purely from the
    //    published gauges.
    let snapshot = cluster.health_snapshot();
    println!("\n=== health snapshot ===");
    print!("{}", snapshot.render());
    assert_eq!(snapshot.total_queued(), 0, "everything drained");
    assert_eq!(snapshot.total_tenants(), 1);
}
