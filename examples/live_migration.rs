//! Live tenant migration: fault a plane, evacuate the shard, keep serving.
//!
//! Two tenants share a 3-shard pool. One suffers a plane fault mid-stream;
//! instead of stranding it, the pool **evacuates its whole shard** — every
//! tenant is checkpointed at a context-switch boundary and resumed on
//! another shard, pending requests and stream-register state intact, with
//! the migration overhead (bytes moved, downtime, broadcast realignment)
//! billed to the tenant that moved. A serialized checkpoint of the same
//! tenant is also round-tripped through the versioned wire format.
//!
//! ```text
//! cargo run --example live_migration
//! ```

use mcfpga::fabric::netlist_ir::generators;
use mcfpga::prelude::*;

fn main() {
    let params = FabricParams {
        width: 8,
        height: 8,
        channel_width: 4,
        ..FabricParams::default()
    };
    let mut svc = ShardedService::new(3, params, TechParams::default()).expect("service");

    // Round-robin admission: parity → shard 0, popcount → shard 1.
    let parity = svc
        .admit("parity8", &generators::parity_tree(8).expect("netlist"))
        .expect("admit parity");
    let popcount = svc
        .admit("popcount", &generators::popcount4().expect("netlist"))
        .expect("admit popcount");
    println!(
        "admitted {parity} on shard {}, {popcount} on shard {}",
        svc.registry()
            .tenant(parity)
            .expect("record")
            .placement
            .shard,
        svc.registry()
            .tenant(popcount)
            .expect("record")
            .placement
            .shard,
    );

    // Queue work on both tenants, then break parity's plane (the failure
    // class a corrupted configuration produces in production).
    let parity_vec: Vec<(String, bool)> = (0..8).map(|i| (format!("x{i}"), i % 3 == 0)).collect();
    let parity_refs: Vec<(&str, bool)> = parity_vec.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let pop_vec = [("x0", true), ("x1", false), ("x2", true), ("x3", true)];
    for _ in 0..5 {
        svc.submit(parity, &parity_refs).expect("submit parity");
        svc.submit(popcount, &pop_vec).expect("submit popcount");
    }
    svc.inject_plane_fault(parity).expect("inject");
    let served = svc.drain().expect("drain").len();
    let faults = svc.take_faults();
    println!(
        "after the fault: {served} popcount responses served, parity faulted {} time(s), \
         {} requests still queued",
        faults.len(),
        svc.pending_requests()
    );

    // Evacuate the faulted shard: parity moves, requests and all. The
    // fault moves too — evacuation relocates state, it does not repair.
    let moved = svc.evacuate_shard(0).expect("evacuate");
    for (tenant, placement) in &moved {
        println!(
            "evacuated {tenant} -> shard {}, ctx {}",
            placement.shard, placement.ctx
        );
    }
    svc.repair_plane(parity).expect("repair at the new slot");
    let responses = svc.drain().expect("drain after repair");
    let expected = parity_refs.iter().filter(|(_, v)| *v).count() % 2 == 1;
    for r in &responses {
        assert_eq!(r.tenant, parity);
        assert_eq!(
            r.outputs[0].1, expected,
            "moved tenant must answer correctly"
        );
    }
    println!(
        "repaired and drained: {} parity responses, all correct (parity = {expected})",
        responses.len()
    );

    // The wire format: checkpoint -> bytes -> restore as a new tenant.
    let ckpt = svc.checkpoint_tenant(parity).expect("checkpoint");
    let wire = ckpt.to_bytes();
    let parsed = TenantCheckpoint::from_bytes(&wire).expect("decode");
    let (clone, _) = svc.restore_tenant(&parsed, 2).expect("restore");
    println!(
        "checkpoint v{FORMAT_VERSION}: {} bytes on the wire, restored as {clone} on shard 2",
        wire.len()
    );
    svc.submit(clone, &parity_refs).expect("submit to clone");
    let cloned = svc.drain().expect("drain clone");
    assert_eq!(cloned.len(), 1);
    assert_eq!(cloned[0].outputs[0].1, expected);

    println!("\n{}", svc.billing_report());
}
