//! The floating-gate device life cycle: program/verify with injection
//! noise, reprogramming, retention aging, and wear-out — the storage story
//! behind the paper's "no supply voltage is required to keep the storage".
//!
//! ```text
//! cargo run --example device_programming
//! ```

use mcfpga::prelude::*;

fn main() {
    let params = TechParams::default();
    let mut prog = Programmer::new(0xF6_F6, params.clone());
    let radix = Radix::FIVE;

    // Program an up-literal FGFP to threshold level 3.
    let mut dev = Fgmos::new(FgmosMode::UpLiteral);
    let out = prog
        .program_literal(&mut dev, Level::new(3), radix)
        .expect("program");
    println!(
        "programmed up-literal T=3: {} pulses, vth {:.3} V (err {:.3} V)",
        out.pulses, out.final_vth_v, out.error_v
    );
    print_table(&dev, &params);

    // Reprogram to a different literal — charge injection is reversible.
    let out = prog
        .program_literal(&mut dev, Level::new(1), radix)
        .expect("reprogram");
    println!(
        "\nreprogrammed to T=1: {} pulses (lifetime pulses {})",
        out.pulses,
        dev.total_pulses()
    );
    print_table(&dev, &params);

    // A decade in storage: the literal must hold with margin to spare.
    prog.age(&mut dev, 10.0 * 365.0 * 24.0);
    println!(
        "\nafter 10 years of retention drift: margin {:.3} V",
        dev.drift_margin_volts(radix, &params).expect("margin")
    );
    print_table(&dev, &params);

    // Force a margin failure to show it is detectable.
    let mut victim = Fgmos::new(FgmosMode::UpLiteral);
    prog.program_literal(&mut victim, Level::new(2), radix)
        .expect("program");
    victim.drift_threshold(0.7); // well past the half-step margin
    println!("\nafter forced 0.7 V drift on a T=2 device:");
    print_table(&victim, &params);
    println!("(level 2 no longer conducts — drift exceeded the margin)");

    // SRAM for contrast: power loss erases it.
    let mut sram = SramCell::new();
    sram.write(true);
    sram.power_down();
    sram.power_up();
    println!(
        "\nSRAM cell after a power cycle reads {} — FGFP storage would have survived",
        sram.read()
    );
}

fn print_table(dev: &Fgmos, params: &TechParams) {
    let row: Vec<String> = (0..5)
        .map(|v| {
            let on = dev.conducts(Level::new(v), params).expect("programmed");
            format!("{v}:{}", if on { "ON " } else { "off" })
        })
        .collect();
    println!("  conduction by rail level → {}", row.join("  "));
}

use mcfpga::device::SramCell;
