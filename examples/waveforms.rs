//! Regenerates the paper's Fig. 7: the four hybrid MV/B-CSS waveforms over
//! a round-robin context sweep, as ASCII level plots and as CSV.
//!
//! ```text
//! cargo run --example waveforms            # 4 contexts, one sweep
//! cargo run --example waveforms -- 8 3     # 8 contexts, 3 sweeps
//! ```

use mcfpga::css::waveform::{render_fig7, to_csv, trace_hybrid};
use mcfpga::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let contexts: usize = args
        .next()
        .map(|s| s.parse().expect("contexts"))
        .unwrap_or(4);
    let cycles: usize = args.next().map(|s| s.parse().expect("cycles")).unwrap_or(1);

    let gen = HybridCssGen::new(contexts).expect("generator");
    let sched = Schedule::round_robin(contexts, cycles).expect("schedule");

    println!("{}", render_fig7(&gen, &sched).expect("render"));

    let waves = trace_hybrid(&gen, &sched).expect("trace");
    println!("--- CSV ---\n{}", to_csv(&sched, &waves));

    println!("--- per-line toggle counts over the schedule ---");
    for w in &waves {
        println!(
            "{:>12}: {:>3} toggles, peak level {}",
            w.name,
            w.toggle_count(),
            w.peak()
        );
    }
}
