//! Multi-tenant fabric: four *different* applications resident at once,
//! one per context — the "switch personalities in one cycle" use case that
//! motivates multi-context FPGAs in the first place.
//!
//! Context 0: 4-bit parity (error detection)
//! Context 1: 4-way multiplexer (datapath steering)
//! Context 2: 4-bit equality comparator (tag match)
//! Context 3: 4-input popcount (counting)
//!
//! The example cycles the broadcast context and feeds the same input pad
//! values to whichever tenant is live, then prints per-context utilization
//! and the area/power bill per switch architecture.
//!
//! ```text
//! cargo run --example multi_tenant_fabric
//! ```

use mcfpga::fabric::netlist_ir::generators;
use mcfpga::fabric::route::implement_netlist;
use mcfpga::fabric::sim::evaluate_sorted;
use mcfpga::fabric::{power, stats};
use mcfpga::prelude::*;

fn main() {
    let mut fabric = Fabric::new(FabricParams {
        width: 5,
        height: 5,
        channel_width: 3,
        ..FabricParams::default()
    })
    .expect("fabric");

    // Four tenants, four contexts.
    let tenants = [
        ("parity", generators::parity_tree(4).expect("parity")),
        ("mux4", generators::mux_tree(2).expect("mux")),
        ("compare", generators::equality_comparator(4).expect("cmp")),
        ("popcount", generators::popcount4().expect("popcount")),
    ];
    for (ctx, (name, nl)) in tenants.iter().enumerate() {
        let d = implement_netlist(&mut fabric, nl, ctx, 0x5EED + ctx as u64)
            .expect("map tenant");
        println!(
            "ctx {ctx}: tenant '{name}' — {} LUTs, wirelength {} hops",
            nl.lut_count(),
            d.wirelength
        );
    }

    // One broadcast context switch per tenant query.
    println!("\ncycling contexts over shared input pads:");
    let out = evaluate_sorted(
        &fabric,
        0,
        &[("x0", true), ("x1", true), ("x2", false), ("x3", true)],
    )
    .expect("parity");
    println!("  ctx 0 parity(1101)   → {}", out[0].1);

    let out = evaluate_sorted(
        &fabric,
        1,
        &[
            ("d0", false),
            ("d1", false),
            ("d2", true),
            ("d3", false),
            ("sel0", false),
            ("sel1", true),
        ],
    )
    .expect("mux");
    println!("  ctx 1 mux(sel=2)     → {}", out[0].1);

    let out = evaluate_sorted(
        &fabric,
        2,
        &[
            ("a0", true),
            ("a1", false),
            ("a2", true),
            ("a3", false),
            ("b0", true),
            ("b1", false),
            ("b2", true),
            ("b3", false),
        ],
    )
    .expect("compare");
    println!("  ctx 2 eq(0b0101, 0b0101) → {}", out[0].1);

    let out = evaluate_sorted(
        &fabric,
        3,
        &[("x0", true), ("x1", true), ("x2", true), ("x3", false)],
    )
    .expect("popcount");
    let count = out
        .iter()
        .fold(0u32, |acc, (n, v)| {
            if *v {
                acc | 1 << n.strip_prefix('c').unwrap().parse::<u32>().unwrap()
            } else {
                acc
            }
        });
    println!("  ctx 3 popcount(1110) → {count}");

    // Utilization per plane.
    println!("\nutilization per configuration plane:");
    let st = stats::all_context_stats(&fabric).expect("stats");
    print!("{}", stats::render_stats(&st));

    // What this residency costs in routing silicon, per architecture.
    println!("\nrouting silicon for this 5×5 fabric:");
    for arch in ArchKind::all() {
        let f = Fabric::new(FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            arch,
            ..FabricParams::default()
        })
        .expect("fabric");
        let rep = power::routing_power(&f, &TechParams::default());
        println!(
            "  {:<28} {:>8} transistors, {:>10.3e} W static",
            arch.label(),
            rep.routing_transistors,
            rep.static_power_w
        );
    }
}
