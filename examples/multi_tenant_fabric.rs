//! Multi-tenant fabric: four *different* applications resident at once,
//! one per context — the "switch personalities in one cycle" use case that
//! motivates multi-context FPGAs in the first place.
//!
//! Context 0: 4-bit parity (error detection)
//! Context 1: 4-way multiplexer (datapath steering)
//! Context 2: 4-bit equality comparator (tag match)
//! Context 3: 4-input popcount (counting)
//!
//! The fabric is **compiled once** into dense per-context planes, then a
//! CSS-driven schedule cycles the tenants while each query runs 64 input
//! vectors per bit-parallel pass. Per-context utilization, compiled-plane
//! shape and the area/power bill per switch architecture follow.
//!
//! ```text
//! cargo run --example multi_tenant_fabric
//! ```

use mcfpga::core::ArchKind;
use mcfpga::fabric::compiled::{pack_lanes, CompiledFabric, LANES};
use mcfpga::fabric::context::{run_schedule, ContextSequencer};
use mcfpga::fabric::netlist_ir::generators;
use mcfpga::fabric::route::implement_netlist;
use mcfpga::fabric::{power, stats};
use mcfpga::prelude::*;

fn main() {
    let mut fabric = Fabric::new(FabricParams {
        width: 5,
        height: 5,
        channel_width: 3,
        ..FabricParams::default()
    })
    .expect("fabric");

    // Four tenants, four contexts.
    let tenants = [
        ("parity", generators::parity_tree(4).expect("parity")),
        ("mux4", generators::mux_tree(2).expect("mux")),
        ("compare", generators::equality_comparator(4).expect("cmp")),
        ("popcount", generators::popcount4().expect("popcount")),
    ];
    for (ctx, (name, nl)) in tenants.iter().enumerate() {
        let d = implement_netlist(&mut fabric, nl, ctx, 0x5EED + ctx as u64).expect("map tenant");
        println!(
            "ctx {ctx}: tenant '{name}' — {} LUTs, wirelength {} hops",
            nl.lut_count(),
            d.wirelength
        );
    }

    // Compile once: every context plane flattened and levelized.
    let compiled = CompiledFabric::compile(&fabric).expect("compile");

    // Single queries through the batch engine (lane 0 carries the vector).
    println!("\ncycling contexts over shared input pads:");

    let out = compiled
        .eval_batch_sorted(
            0,
            &[
                ("x0", u64::from(true)),
                ("x1", u64::from(true)),
                ("x2", u64::from(false)),
                ("x3", u64::from(true)),
            ],
        )
        .expect("parity");
    println!("  ctx 0 parity(1101)   → {}", out[0].1 & 1 == 1);

    let out = compiled
        .eval_batch_sorted(
            1,
            &[
                ("d0", u64::from(false)),
                ("d1", u64::from(false)),
                ("d2", u64::from(true)),
                ("d3", u64::from(false)),
                ("sel0", u64::from(false)),
                ("sel1", u64::from(true)),
            ],
        )
        .expect("mux");
    println!("  ctx 1 mux(sel=2)     → {}", out[0].1 & 1 == 1);

    let out = compiled
        .eval_batch_sorted(
            2,
            &[
                ("a0", u64::from(true)),
                ("a1", u64::from(false)),
                ("a2", u64::from(true)),
                ("a3", u64::from(false)),
                ("b0", u64::from(true)),
                ("b1", u64::from(false)),
                ("b2", u64::from(true)),
                ("b3", u64::from(false)),
            ],
        )
        .expect("compare");
    println!("  ctx 2 eq(0b0101, 0b0101) → {}", out[0].1 & 1 == 1);

    let out = compiled
        .eval_batch_sorted(
            3,
            &[
                ("x0", u64::from(true)),
                ("x1", u64::from(true)),
                ("x2", u64::from(true)),
                ("x3", u64::from(false)),
            ],
        )
        .expect("popcount");
    let count = out.iter().fold(0u32, |acc, (n, v)| {
        if *v & 1 == 1 {
            acc | 1 << n.strip_prefix('c').unwrap().parse::<u32>().unwrap()
        } else {
            acc
        }
    });
    println!("  ctx 3 popcount(1110) → {count}");

    // Batch mode: all 16 parity input vectors in one bit-parallel pass.
    let lanes: Vec<(String, u64)> = (0..4)
        .map(|i| (format!("x{i}"), pack_lanes(|v| v < 16 && (v >> i) & 1 == 1)))
        .collect();
    let ins: Vec<(&str, u64)> = lanes.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let batch = compiled.eval_batch_sorted(0, &ins).expect("batch parity");
    println!(
        "\nbatch query: parity of all 16 vectors in one {LANES}-lane pass → {:#06x}",
        batch[0].1 & 0xFFFF
    );

    // A CSS-driven schedule sweeping the tenants, energy accounted.
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).expect("sequencer");
    let sched = Schedule::round_robin(4, 2).expect("schedule");
    let union: Vec<(&str, u64)> = vec![
        ("x0", !0),
        ("x1", 0),
        ("x2", !0),
        ("x3", 0),
        ("d0", 0),
        ("d1", !0),
        ("d2", 0),
        ("d3", 0),
        ("sel0", !0),
        ("sel1", 0),
        ("a0", !0),
        ("a1", 0),
        ("a2", !0),
        ("a3", 0),
        ("b0", !0),
        ("b1", 0),
        ("b2", !0),
        ("b3", 0),
    ];
    let run = run_schedule(&compiled, &mut seq, &sched, &union, &TechParams::default())
        .expect("schedule run");
    println!(
        "schedule run: {} steps, {} switches, {} broadcast toggles, {:.3e} J",
        run.stats.steps, run.stats.switches, run.stats.wire_toggles, run.stats.dynamic_energy_j
    );

    // Utilization and compiled shape per plane.
    println!("\nutilization per configuration plane:");
    let st = stats::all_context_stats(&fabric).expect("stats");
    print!("{}", stats::render_stats(&st));
    println!("\ncompiled planes:");
    let cs = stats::compiled_stats(&compiled).expect("compiled stats");
    print!("{}", stats::render_compiled_stats(&cs));

    // What this residency costs in routing silicon, per architecture.
    println!("\nrouting silicon for this 5×5 fabric:");
    for arch in ArchKind::all() {
        let f = Fabric::new(FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            arch,
            ..FabricParams::default()
        })
        .expect("fabric");
        let rep = power::routing_power(&f, &TechParams::default());
        println!(
            "  {:<28} {:>8} transistors, {:>10.3e} W static",
            arch.label(),
            rep.routing_transistors,
            rep.static_power_w
        );
    }
}
